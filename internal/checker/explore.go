// Package checker implements the verification machinery behind the paper's
// proofs: an exhaustive model checker over the reachable configuration space
// (with fail-stop failure injection), computation of concurrency sets C(s),
// the safe-state analysis of Theorem 2, bias/committability, and a
// scenario-replay engine for the indistinguishability arguments of Theorems
// 8 and 13.
//
// The walk is asynchronous and fingerprint-partitioned: Options.Parallelism
// owner workers each hold a static shard of the 128-bit digest space and
// exchange successors over bounded channels with no global barrier
// (frontier.Pool), while a sequential canonical replay pass walks the
// stored expansions in breadth-first frontier order — re-expanding on
// demand anything the pool never reached — and alone decides acceptance,
// violation order, and budget exhaustion. The replay order is canonical,
// so the final Exploration — node counts, state census, violation order,
// FirstTrace — is byte-identical at every parallelism level, including the
// partial results returned on cancellation or budget exhaustion. See
// internal/frontier for the ownership/quiescence machinery and DESIGN.md
// for why post-hoc ordering preserves the byte-identical contract.
package checker

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/frontier"
	"repro/internal/sim"
	"repro/internal/taxonomy"
)

// Options configures an exploration.
type Options struct {
	// MaxFailures bounds the number of injected failures per run.
	// Negative means N−1 (the default); zero means failure-free.
	MaxFailures int
	// OmissionBudget, when positive, additionally explores omission
	// faults: at every configuration where a delivery is enabled, the
	// adversary may instead suppress it (sim.Omit), up to this many times
	// per run. The budget is tracked inside the configuration, so
	// deduplication distinguishes "same states, different budget left".
	// Requires N ≤ 64. Zero keeps the crash-only space.
	OmissionBudget int
	// MobileOmissions, when positive with OmissionBudget, caps the number
	// of simultaneously omission-faulty processors at k — the mobile
	// omission model: the faulty set moves as suppressed processors are
	// rehabilitated by successful deliveries.
	MobileOmissions int
	// FailProcs restricts which processors may be failed (nil = all).
	FailProcs []sim.ProcID
	// Inputs restricts the initial input vectors (nil = all 2^N).
	Inputs [][]sim.Bit
	// MaxNodes caps the exploration (default sim.DefaultMaxNodes, the
	// budget shared with scheme.Options). Exceeding it is an error, never
	// a silent truncation.
	MaxNodes int
	// Parallelism is the number of owner workers the partitioned engine
	// shards the digest space across (0 = GOMAXPROCS; 1 = fully
	// sequential, no pool at all). The result is byte-identical at any
	// setting; parallelism only changes wall-clock time.
	Parallelism int
	// Problem, if non-nil, enables inline conformance checking: the
	// decision rule is checked at every decision transition, consistency
	// at every node, and termination at every terminal node. Violations
	// accumulate in Exploration.Violations (capped at 100).
	Problem *taxonomy.Problem
	// TrackTraces records parent links so the first violation comes with
	// a full event trace (FirstTrace). Costs memory proportional to the
	// node count. Under breadth-first exploration the recorded trace is a
	// shortest path to the violating configuration.
	TrackTraces bool
	// StopAtFirstViolation ends the exploration as soon as one violation
	// is found — useful when only the existence of a counterexample
	// matters.
	StopAtFirstViolation bool
	// Dedup selects the visited-set engine. The default,
	// frontier.DedupFingerprint, admits nodes by 128-bit incremental
	// fingerprint and never builds canonical key strings on the hot path;
	// frontier.DedupVerified additionally verifies every fingerprint hit
	// against the full canonical key (collisions are counted in
	// Exploration.Collisions and never merge states); and
	// frontier.DedupStrings is the collision-proof reference engine keyed
	// by full canonical strings. All three produce byte-identical
	// Explorations (the differential suite enforces it); they differ only
	// in speed and in the astronomically unlikely event of a 128-bit
	// collision.
	Dedup frontier.Dedup
	// Reduction selects state-space reductions (ample-set partial-order
	// reduction and/or symmetry canonicalization; see Reduction). The
	// default explores every interleaving. Reduced runs keep the
	// conformance verdict and terminal decision structure of the full
	// space while visiting far fewer nodes; see DESIGN.md §8 for what is
	// and is not preserved.
	Reduction Reduction
	// Clock, when non-nil, samples monotonic elapsed time for the
	// replay-share instrumentation (Exploration.ReplayWall/ReplayBlocked).
	// The checker itself never reads wall clocks — determinism-critical
	// code cannot branch on time — so callers that want the measurement
	// inject one (ccbench passes time.Since of its start).
	Clock func() time.Duration
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return sim.DefaultMaxNodes
	}
	return o.MaxNodes
}

// omission resolves the options' omission policy.
func (o Options) omission() sim.OmissionPolicy {
	return sim.OmissionPolicy{Budget: o.OmissionBudget, Mobile: o.MobileOmissions}
}

// StateInfo aggregates everything the analysis needs to know about one
// accessible local state.
type StateInfo struct {
	// Key is the state's canonical encoding.
	Key string
	// Sample is one State value with this key.
	Sample sim.State
	// Procs lists which processors ever occupy the state.
	Procs map[sim.ProcID]struct{}
	// Inputs is the set of input vectors (encoded "0110…") under which
	// the state is accessible. "s implies X" means X holds for every
	// vector here.
	Inputs map[string]struct{}
	// Conc is the concurrency set C(s): the keys of every state that
	// occurs in the same accessible configuration as s.
	Conc map[string]struct{}
	// SeenEmptyBuffer reports whether the state ever occurs in an
	// accessible configuration in which its occupant's buffer is empty.
	// A receiving state for which this is false is an E̅ state: the
	// processor knows its buffer is not empty (Section 3).
	SeenEmptyBuffer bool
}

// Decision returns the state's visible decision.
func (si *StateInfo) Decision() sim.Decision {
	if d, ok := si.Sample.Decided(); ok {
		return d
	}
	return sim.NoDecision
}

// ImpliesAllOnes reports whether the state implies that every input is 1
// (condition (2) of the safe-state definition).
func (si *StateInfo) ImpliesAllOnes() bool {
	for vec := range si.Inputs { //ccvet:ignore detrange universally quantified predicate; order is unobservable
		if strings.ContainsRune(vec, '0') {
			return false
		}
	}
	return true
}

// ConfigRecord is the per-configuration information retained after
// exploration: interned state keys, the decision ledger (what each processor
// has ever decided by this configuration), and whether the configuration is
// terminal (quiescent).
type ConfigRecord struct {
	StateIdx  []int32
	Ledger    []sim.Decision
	InputsVec string
	Terminal  bool
}

// Status reports how an exploration ended. The zero value is Complete so
// that explorations which ran to the end need no special handling.
type Status int

const (
	// StatusComplete means the reachable space was fully explored (or the
	// exploration stopped at the first violation, as requested).
	StatusComplete Status = iota
	// StatusInterrupted means the context was cancelled mid-exploration;
	// the Exploration holds everything visited up to that point.
	StatusInterrupted
	// StatusExhausted means the node budget ran out; the Exploration holds
	// the visited prefix of the space.
	StatusExhausted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusInterrupted:
		return "interrupted"
	case StatusExhausted:
		return "budget-exhausted"
	default:
		return "invalid"
	}
}

// Partial reports whether the exploration covered only part of the space.
func (s Status) Partial() bool { return s != StatusComplete }

// Exploration is the result of exploring a protocol's configuration space.
type Exploration struct {
	Proto     sim.Protocol
	Opts      Options
	NodeCount int
	// Status records whether the exploration completed, was interrupted by
	// context cancellation, or exhausted its node budget. When Status is
	// partial, every aggregate below still describes the visited prefix —
	// partial results are returned, never discarded. The state census is
	// fed exclusively by accepted configurations, so States, Configs,
	// Violations, NodeCount, and FrontierSize are all byte-identical at
	// every parallelism level for complete and budget-exhausted runs; a
	// mid-run cancellation stops the canonical replay at a timing-dependent
	// (but still canonical-prefix) point.
	Status Status
	// FrontierSize is the number of accepted nodes the canonical walk had
	// not yet consumed when a partial exploration stopped, counting the
	// node being walked or rejected (0 for complete explorations).
	FrontierSize int
	// States maps canonical state key → aggregate info.
	States map[string]*StateInfo
	// stateKeys interns state keys for ConfigRecord.
	stateKeys []string
	stateIdx  map[string]int32
	// Configs records every distinct explored node, in breadth-first
	// discovery order.
	Configs []ConfigRecord
	// Terminals counts quiescent nodes.
	Terminals int
	// Violations lists conformance violations found when Options.Problem
	// was set, capped at 100.
	Violations []taxonomy.Violation
	// FirstTrace is the event trace leading to the first violation, when
	// Options.TrackTraces was set.
	FirstTrace []string
	// Collisions counts verified fingerprint collisions (always 0 except
	// under frontier.DedupVerified, and genuinely expected to stay 0 —
	// a nonzero value means a 2^-128-probability event, or a broken hash).
	Collisions int64
	// Reduction holds the deterministic reduction counters (zero-valued
	// for unreduced runs apart from FullNodes/FullEvents).
	Reduction ReductionStats
	// ReplayWall and ReplayBlocked measure the sequential canonical
	// replay when Options.Clock was set: total wall time of the replay
	// loop, and the portion spent blocked waiting on the prefetch pool.
	// Their difference over the exploration's wall time is the replay's
	// Amdahl share. Timing only — never part of the deterministic result.
	ReplayWall    time.Duration
	ReplayBlocked time.Duration

	// parents records trace links keyed by canonical node key (strings and
	// verified dedup); parentsFP records them keyed by node fingerprint
	// (fingerprint dedup), with rootKeys resolving root fingerprints back
	// to the canonical keys printed in a trace's "initial:" line.
	parents   map[string]parentLink
	parentsFP map[fingerprint.Digest]parentLinkFP
	rootKeys  map[fingerprint.Digest]string
}

type parentLink struct {
	parent string
	event  sim.Event
}

type parentLinkFP struct {
	parent fingerprint.Digest
	event  sim.Event
}

// traceTo reconstructs the event trace from an initial configuration to the
// node with the given key.
func (x *Exploration) traceTo(key string) []string {
	if x.parents == nil {
		return nil
	}
	var events []sim.Event
	cur := key
	for {
		link, ok := x.parents[cur]
		if !ok {
			break
		}
		events = append(events, link.event)
		cur = link.parent
	}
	out := make([]string, 0, len(events)+1)
	out = append(out, "initial: "+cur)
	for i := len(events) - 1; i >= 0; i-- {
		out = append(out, events[i].String())
	}
	return out
}

// traceToFP is traceTo for fingerprint-linked parents. The trace renders
// the same strings as the key-linked walk: event lines from the links and
// the root's canonical key from rootKeys.
func (x *Exploration) traceToFP(fp fingerprint.Digest) []string {
	if x.parentsFP == nil {
		return nil
	}
	var events []sim.Event
	cur := fp
	for {
		link, ok := x.parentsFP[cur]
		if !ok {
			break
		}
		events = append(events, link.event)
		cur = link.parent
	}
	out := make([]string, 0, len(events)+1)
	out = append(out, "initial: "+x.rootKeys[cur])
	for i := len(events) - 1; i >= 0; i-- {
		out = append(out, events[i].String())
	}
	return out
}

// addViolation appends a violation, respecting the cap, and records the
// trace to the first violating node when trace tracking is on. The
// violating node is identified by whichever handle the dedup mode tracks
// (canonical key or fingerprint).
func (x *Exploration) addViolation(v taxonomy.Violation, s *succ) {
	if len(x.Violations) == 0 {
		if x.parents != nil {
			x.FirstTrace = x.traceTo(s.key)
		} else if x.parentsFP != nil {
			x.FirstTrace = x.traceToFP(s.fp)
		}
	}
	if len(x.Violations) < 100 {
		x.Violations = append(x.Violations, v)
	}
}

// Conforms reports whether a checked exploration found no violations.
func (x *Exploration) Conforms() bool { return len(x.Violations) == 0 }

// StateKeyAt resolves an interned index back to its key.
func (x *Exploration) StateKeyAt(i int32) string { return x.stateKeys[i] }

// node is one exploration state: configuration plus the decision ledger
// (needed because total consistency constrains decisions that failure or
// amnesia later hide). The initial input vector rides along because the
// decision rule is a predicate over it.
type node struct {
	cfg    *sim.Config
	ledger []sim.Decision
	inputs []sim.Bit          // shared, read-only
	vec    string             // inputsKey(inputs)
	ckey   string             // memoized key(); empty under fingerprint dedup
	fp     fingerprint.Digest // memoized nodeFP(); zero under strings dedup
}

func (nd *node) key() string {
	var sb strings.Builder
	sb.WriteString(nd.cfg.Key())
	sb.WriteByte('!')
	for _, d := range nd.ledger {
		switch d {
		case sim.Commit:
			sb.WriteByte('C')
		case sim.Abort:
			sb.WriteByte('A')
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// saltLedger salts per-processor ledger contributions into node
// fingerprints; spaced away from the sim package's salt bases.
const saltLedger uint64 = 0x04_0000_0000

// ledgerFP fingerprints a decision ledger as a sum of salted per-processor
// decision terms. Undecided entries contribute nothing, so a successor's
// ledger fingerprint differs from its parent's by at most the one term the
// stepping processor's new decision adds.
func ledgerFP(ledger []sim.Decision) fingerprint.Digest {
	var d fingerprint.Digest
	for p, dec := range ledger {
		if dec != sim.NoDecision {
			d = d.Add(fingerprint.OfUint64(uint64(dec)).Mixed(saltLedger + uint64(p)))
		}
	}
	return d
}

// nodeFP fingerprints an exploration node: the configuration fingerprint
// plus the ledger terms. It is the hash analogue of node.key, covering
// exactly what the key string covers.
func nodeFP(nd *node) fingerprint.Digest {
	return nd.cfg.Fingerprint().Add(ledgerFP(nd.ledger))
}

func inputsKey(inputs []sim.Bit) string {
	var sb strings.Builder
	for _, b := range inputs {
		if b == sim.One {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Explore walks the reachable configuration space of the protocol over the
// requested input vectors, injecting up to MaxFailures fail-stop failures at
// every point, and aggregates states, concurrency sets, and configuration
// records.
func Explore(proto sim.Protocol, opts Options) (*Exploration, error) {
	return ExploreContext(context.Background(), proto, opts)
}

// succ is one edge generated while expanding a frontier node: the successor
// key, the event, and — when the successor was not already visited when the
// expansion ran — the precomputed node, its interned per-processor state
// keys, and its violations. Everything here is computed by the expanding
// worker; the canonical replay only orders and accepts.
type succ struct {
	key      string             // canonical node key; empty under fingerprint dedup
	fp       fingerprint.Digest // node fingerprint; routing digest under strings dedup at parallelism > 1, zero otherwise
	event    sim.Event
	edgeViol []taxonomy.Violation
	// nd is nil when the successor was already in the shared visited set
	// when the expansion ran — in which case the set's admit-implies-stored
	// invariant lets the replay fetch the materialized node from the pool.
	// Under fingerprint dedup a nil nd additionally means the successor was
	// never materialized at all: its fingerprint was derived from the
	// parent's and found already visited. Under a canonicalizing reduction
	// with the pool, nd is always set (see expandEvents): the stored class
	// representative is race-chosen and may be a different sibling, so the
	// replay must never substitute it for the canonical-order successor.
	nd        *node
	stateKeys []string
	terminal  bool
	nodeViol  []taxonomy.Violation
	// permuted marks a successor whose dedup handle was canonicalized
	// away from its own frame by a non-identity automorphism; the replay
	// counts rejected permuted successors as symmetry prunes.
	permuted bool
	// elided marks a successor whose dedup handle was computed with dead
	// letters erased (sim.Config.WithoutDeadBuffers); the replay counts
	// rejected elided successors as elision prunes.
	elided bool
}

// expansion is one frontier node's worth of generated edges. reduced marks
// an ample-set expansion (a strict subset of the enabled events); the
// replay substitutes the full expansion when the cycle proviso demands it.
type expansion struct {
	succs   []succ
	err     error
	reduced bool
}

// eventScratch pools per-expansion event slices so enumerating enabled
// events allocates nothing in steady state.
var eventScratch = sync.Pool{
	New: func() any {
		s := make([]sim.Event, 0, 64)
		return &s
	},
}

// explorer bundles the shared machinery of one exploration: the visited set
// and state aggregates are written concurrently by the pool's owner workers
// and the census goroutines (commutative updates only); everything on x is
// written solely by the sequential canonical replay.
type explorer struct {
	proto       sim.Protocol
	n           int
	opts        Options
	maxFail     int
	failAllowed []bool
	x           *Exploration
	dedup       frontier.Dedup
	visited     *frontier.VisitedSet   // strings dedup
	fpVisited   *frontier.FPVisitedSet // fingerprint dedup
	fpVerified  *frontier.FPVerifiedSet
	interner    *frontier.Interner
	states      *frontier.ShardedMap[*StateInfo]
	// pool is the asynchronous partitioned prefetch engine (nil at
	// parallelism 1); seq is the replay's own sequential visited set,
	// whose admissions — not the pool's — define the result (nil when
	// pool is nil: with no concurrent admitters the shared set already
	// fills in canonical order and serves both roles).
	pool *frontier.Pool[*succ, expansion]
	seq  *frontier.SeqVisited
	// routeFP marks strings dedup at parallelism > 1, where successors
	// additionally carry a routing digest of the canonical key so the
	// partitioned pool can shard them.
	routeFP bool
	// census streams accepted configurations into the state census.
	census *censusSink
	// keyCache memoizes state digest → interned state Key string, so the
	// fingerprint engine builds each distinct state's key exactly once for
	// the census instead of once per occurrence.
	keyCache *frontier.FPShardedMap[string]
	// predictor memoizes transition outcomes by input digests, so the fast
	// path's successor fingerprints cost map probes instead of protocol
	// callbacks plus state hashing. Fingerprint dedup only.
	predictor *sim.Predictor
	// ample enables ample-set partial-order reduction in expand; elide
	// enables dead-letter elision in the canonical dedup handle (both are
	// switched by the ample reduction modes); symPerms holds the
	// protocol's non-identity topology automorphisms when symmetry
	// canonicalization is on (empty = no usable symmetry). All resolved
	// once by initReduction.
	ample    bool
	elide    bool
	symPerms []sim.ProcPerm
	// clock is Options.Clock (nil = no replay timing).
	clock func() time.Duration
}

// seen reports whether the successor's dedup handle was already visited
// when the level started expanding (workers only read; the merge writes).
func (e *explorer) seen(s *succ) bool {
	switch e.dedup {
	case frontier.DedupFingerprint:
		return e.fpVisited.Seen(s.fp)
	case frontier.DedupVerified:
		return e.fpVerified.Seen(s.fp, s.key)
	default:
		return e.visited.Seen(s.key)
	}
}

// admit marks the successor visited, reporting whether it was new. Merge
// phase only.
func (e *explorer) admit(s *succ) bool {
	switch e.dedup {
	case frontier.DedupFingerprint:
		return e.fpVisited.Add(s.fp)
	case frontier.DedupVerified:
		return e.fpVerified.Add(s.fp, s.key)
	default:
		return e.visited.Add(s.key)
	}
}

// stateKeysOf returns the interned per-processor state keys of one
// materialized configuration. Runs on whatever goroutine expands the node;
// the interner and key cache are concurrent.
func (e *explorer) stateKeysOf(nd *node) []string {
	keys := make([]string, e.n)
	for p := 0; p < e.n; p++ {
		keys[p] = e.stateKey(nd, p)
	}
	return keys
}

// censusAdd folds one accepted configuration into the concurrent state
// census. Every update is a set union, so census workers may process
// accepted nodes in any order without perturbing the result.
func (e *explorer) censusAdd(nd *node, keys []string) {
	for p := 0; p < e.n; p++ {
		pid := sim.ProcID(p)
		sample := nd.cfg.States[p]
		emptyBuffer := len(nd.cfg.Buffers[p]) == 0
		e.states.Update(keys[p], func(si *StateInfo) *StateInfo {
			if si == nil {
				si = &StateInfo{
					Key:    keys[p],
					Sample: sample,
					Procs:  make(map[sim.ProcID]struct{}),
					Inputs: make(map[string]struct{}),
					Conc:   make(map[string]struct{}),
				}
			}
			si.Procs[pid] = struct{}{}
			si.Inputs[nd.vec] = struct{}{}
			if emptyBuffer {
				si.SeenEmptyBuffer = true
			}
			// Concurrency sets: every pair of states in this
			// configuration is mutually concurrent.
			for q := 0; q < e.n; q++ {
				if q != p {
					si.Conc[keys[q]] = struct{}{}
				}
			}
			return si
		})
	}
}

// stateKey returns the interned canonical key of nd's processor-p state.
// The fingerprint engine resolves it through the digest-keyed cache so a
// state's Key string is built once per distinct state, not once per
// occurrence; the other engines intern directly (verified mode stays free
// of any digest-keyed shortcut so its results are exact even under a
// hash collision).
func (e *explorer) stateKey(nd *node, p int) string {
	if e.dedup == frontier.DedupFingerprint {
		return e.keyCache.GetOrInsert(nd.cfg.StateDigestAt(p), func() string {
			return e.interner.Intern(nd.cfg.States[p].Key())
		})
	}
	return e.interner.Intern(nd.cfg.States[p].Key())
}

// expand generates the successors of one frontier node — the ample subset
// when ample reduction applies, all of them otherwise. Runs on a pool
// owner (or on the replay goroutine, for nodes the pool never reached): it
// must not touch e.x, and its only writes go through the commutative
// interner/state/key-cache aggregates.
func (e *explorer) expand(nd *node) expansion {
	return e.expandEvents(nd, e.ample)
}

// expandFull generates every successor regardless of the ample setting;
// the replay calls it when the cycle proviso rejects a reduced expansion.
func (e *explorer) expandFull(nd *node) expansion {
	return e.expandEvents(nd, false)
}

func (e *explorer) expandEvents(nd *node, tryAmple bool) expansion {
	var out expansion
	scratch := eventScratch.Get().(*[]sim.Event)
	defer func() {
		*scratch = (*scratch)[:0]
		eventScratch.Put(scratch)
	}()
	failedCount := 0
	for p := 0; p < e.n; p++ {
		if nd.cfg.Faulty(sim.ProcID(p)) {
			failedCount++
		}
	}
	events := (*scratch)[:0]
	if tryAmple {
		if p, ok := ampleProc(nd.cfg); ok {
			events = e.appendAmpleEvents(events, p, failedCount)
			out.reduced = true
		}
	}
	if !out.reduced {
		events = sim.AppendEnabled(events, nd.cfg)
		if failedCount < e.maxFail {
			for p := 0; p < e.n; p++ {
				if e.failAllowed[p] && !nd.cfg.Faulty(sim.ProcID(p)) {
					events = append(events, sim.Event{Proc: sim.ProcID(p), Type: sim.Fail})
				}
			}
		}
	}
	*scratch = events
	out.succs = make([]succ, 0, len(events))
	// The fast path predicts each successor's fingerprint incrementally
	// from the parent's and skips materialization for already-visited
	// successors — the bulk of all edges in a dense state space. It is
	// sound only when nothing but the fingerprint is needed per seen edge:
	// fingerprint dedup, no inline conformance checking (edge violations
	// need the materialized successor), no symmetry (the incremental
	// fingerprint is the successor's own frame, not its canonical handle).
	fast := e.dedup == frontier.DedupFingerprint && e.opts.Problem == nil && !e.canonicalizing()
	for _, ev := range events {
		var cfg *sim.Config
		var err error
		if fast {
			if fp, ok := e.predictSeen(nd, ev); ok {
				out.succs = append(out.succs, succ{fp: fp, event: ev})
				continue
			}
			cfg, _, err = e.predictor.Materialize(e.proto, nd.cfg, ev)
		} else {
			cfg, _, err = sim.Apply(e.proto, nd.cfg, ev)
		}
		if err != nil {
			out.err = fmt.Errorf("checker: exploring %s: %w", e.proto.Name(), err)
			return out
		}
		nxt := &node{cfg: cfg, ledger: updateLedger(nd.ledger, cfg), inputs: nd.inputs, vec: nd.vec}
		s := succ{event: ev}
		switch e.dedup {
		case frontier.DedupFingerprint:
			nxt.fp = nodeFP(nxt)
			s.fp = nxt.fp
		case frontier.DedupVerified:
			nxt.ckey = nxt.key()
			nxt.fp = nodeFP(nxt)
			s.key, s.fp = nxt.ckey, nxt.fp
		default:
			nxt.ckey = nxt.key()
			s.key = nxt.ckey
			if e.routeFP {
				nxt.fp = fingerprint.OfString(nxt.ckey)
				s.fp = nxt.fp
			}
		}
		if e.canonicalizing() {
			e.canonicalizeSucc(nxt, &s)
		}
		if e.opts.Problem != nil {
			s.edgeViol = decisionEdgeViolations(*e.opts.Problem, nd, nxt)
		}
		// Under a canonicalizing reduction one dedup handle covers several
		// genuinely different configurations (dead-letter and orbit
		// siblings). The pool's shared set fills in race order, so letting a
		// shared-set hit drop the materialization would leave the replay to
		// fetch whichever sibling won the speculative race — its frame,
		// buffers, and input vector would then leak into the census and the
		// recorded configurations nondeterministically. With the pool,
		// canonicalizing expansions therefore always materialize, and the
		// replay always walks the canonical-order successor's own node.
		if (e.pool != nil && e.canonicalizing()) || !e.seen(&s) {
			s.nd = nxt
			s.terminal = cfg.Quiescent()
			s.stateKeys = e.stateKeysOf(nxt)
			if e.opts.Problem != nil {
				s.nodeViol = nodeViolations(*e.opts.Problem, nxt)
			}
		}
		out.succs = append(out.succs, s)
	}
	return out
}

// predictSeen derives the fingerprint that ev's successor node would have
// — configuration fingerprint via the memoizing sim.Predictor, ledger
// delta from the predicted post-state's decision — and reports whether
// that successor is already in the visited set. ok=false means the caller
// must materialize: the successor is new, the event is irregular (Apply
// must produce the exact error), or the ledger transition is one the delta
// rule cannot predict.
func (e *explorer) predictSeen(nd *node, ev sim.Event) (fingerprint.Digest, bool) {
	pred, ok := e.predictor.Predict(e.proto, nd.cfg, ev)
	if !ok {
		return fingerprint.Digest{}, false
	}
	fp := nd.fp.Sub(nd.cfg.Fingerprint()).Add(pred.CfgFP)
	if d := pred.Decision; pred.Decided {
		if old := nd.ledger[ev.Proc]; old != d {
			if old != sim.NoDecision {
				// A decision change by way of an amnesic detour; the
				// ledger delta is not a single added term, so fall back
				// to the materializing path.
				return fingerprint.Digest{}, false
			}
			fp = fp.Add(fingerprint.OfUint64(uint64(d)).Mixed(saltLedger + uint64(ev.Proc)))
		}
	}
	if !e.fpVisited.Seen(fp) {
		return fingerprint.Digest{}, false
	}
	return fp, true
}

// censusItem is one accepted configuration bound for the state census.
type censusItem struct {
	nd   *node
	keys []string
}

// censusSink feeds accepted configurations into the concurrent state
// census. At parallelism 1 it aggregates inline; above that it streams
// items to census goroutines over a channel so the replay's hot loop never
// pays for the O(N²) concurrency-set union. Census updates are set unions,
// so processing order never shows in the snapshot.
type censusSink struct {
	e    *explorer
	ch   chan censusItem
	wg   sync.WaitGroup
	once sync.Once
}

func (e *explorer) newCensusSink(workers int) *censusSink {
	cs := &censusSink{e: e}
	if workers <= 1 {
		return cs
	}
	cs.ch = make(chan censusItem, 256)
	for i := 0; i < workers; i++ {
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			for it := range cs.ch {
				cs.e.censusAdd(it.nd, it.keys)
			}
		}()
	}
	return cs
}

func (cs *censusSink) add(nd *node, keys []string) {
	if cs.ch == nil {
		cs.e.censusAdd(nd, keys)
		return
	}
	cs.ch <- censusItem{nd: nd, keys: keys}
}

// close drains the census; idempotent so it can be deferred (releasing the
// workers when the replay re-panics a deterministic protocol panic) and
// also called on the happy path before the snapshot.
func (cs *censusSink) close() {
	cs.once.Do(func() {
		if cs.ch != nil {
			close(cs.ch)
			cs.wg.Wait()
		}
	})
}

// replayer is the sequential canonical ordering pass that turns the pool's
// unordered speculative store into a deterministic Exploration: a FIFO walk
// over accepted nodes reproducing exactly the breadth-first frontier order
// (levels, then frontier position, then event order) of a sequential
// exploration. Its own admissions (explorer.seq at parallelism > 1, the
// shared set otherwise) decide acceptance; the pool is consulted only as a
// cache of prefetched nodes and expansions, with on-demand re-expansion
// covering whatever the pool dropped — so the result is a pure function of
// the root set at every parallelism level.
type replayer struct {
	e *explorer
	// queue holds accepted nodes not yet consumed by the walk; head is
	// the next to walk. Consumed slots are nilled so a walked node's
	// memory can be reclaimed once its children are recorded.
	queue []*node
	head  int
}

// frontierLeft is the partial-stop frontier measure: accepted nodes the
// walk has not consumed, counting the node being walked (or the one whose
// acceptance was rejected).
func (r *replayer) frontierLeft() int { return len(r.queue) - r.head + 1 }

// run walks the canonical order from the synthetic root expansion to
// completion, budget exhaustion, first violation, or interruption. It also
// enforces the ample cycle proviso — a reduced expansion with an
// already-visited successor is re-expanded in full before walking — and
// counts the reduction statistics, both purely from the canonical order so
// reduced results stay byte-identical at every parallelism level.
func (r *replayer) run(ctx context.Context, roots []succ) error {
	e, x := r.e, r.e.x
	if e.clock != nil {
		start := e.clock()
		defer func() { x.ReplayWall = e.clock() - start }()
	}
	rootExp := expansion{succs: roots}
	stop, err := r.walk(nil, &rootExp)
	for err == nil && !stop && r.head < len(r.queue) {
		nd := r.queue[r.head]
		r.queue[r.head] = nil
		r.head++
		exp, cerr := r.expansionOf(ctx, nd)
		if cerr != nil {
			x.Status = StatusInterrupted
			x.FrontierSize = r.frontierLeft()
			return fmt.Errorf("checker: exploration of %s interrupted: %w", e.proto.Name(), cerr)
		}
		if exp.reduced && r.provisoHit(exp) {
			x.Reduction.ProvisoFallbacks++
			full := e.expandFull(nd)
			exp = &full
		}
		if exp.err == nil {
			if exp.reduced {
				x.Reduction.AmpleNodes++
				x.Reduction.AmpleEvents += int64(len(exp.succs))
			} else {
				x.Reduction.FullNodes++
				x.Reduction.FullEvents += int64(len(exp.succs))
			}
		}
		stop, err = r.walk(nd, exp)
	}
	return err
}

// expansionOf fetches nd's expansion from the pool when prefetched, and
// re-expands on demand otherwise — the node was dropped by the cap, a
// panic, or a stop. The context check comes first, before the prefetch
// lookup, so cancellation interrupts the walk at the same canonical
// boundary (a dequeue) whether or not the pool got ahead of it.
//
// Under a canonicalizing reduction a prefetched expansion is only reused
// when the pool's stored representative is content-identical to the
// canonical-order node (sameNode): the store keeps whichever sibling of the
// canonical class won the speculative race, and an expansion computed from
// a different sibling would leak that sibling's frame into the walk. The
// mismatch path re-expands on the replay goroutine while owners may still
// be running; that is safe because expansion reads only the immutable
// parent node and concurrent-safe interners, and under canonicalization it
// never consults the racing shared set (succs always materialize).
func (r *replayer) expansionOf(ctx context.Context, nd *node) (*expansion, error) {
	e := r.e
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.pool != nil {
		stored, exp, state := r.waitEntry(frontier.NodeKey{FP: nd.fp, Key: nd.ckey}, true)
		if state == frontier.EntryExpanded && r.reusable(stored, nd) {
			return &exp, nil
		}
		// WaitEntry only reports a miss once the pool has drained; with
		// the pool stopped by cancellation, the context error may have
		// arrived while waiting.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	exp := e.expand(nd)
	return &exp, nil
}

// waitEntry is the pool's WaitEntry with the blocked time folded into the
// replay-share instrumentation when a clock was injected.
func (r *replayer) waitEntry(k frontier.NodeKey, take bool) (*succ, expansion, frontier.EntryState) {
	if r.e.clock == nil {
		return r.e.pool.WaitEntry(k, take)
	}
	t0 := r.e.clock()
	s, exp, st := r.e.pool.WaitEntry(k, take)
	r.e.x.ReplayBlocked += r.e.clock() - t0
	return s, exp, st
}

// countPrune attributes a rejected successor to the canonicalization that
// rewrote its handle: symmetry when a non-identity automorphism won (it
// strictly improved on the already-erased identity handle), dead-letter
// elision otherwise.
func (r *replayer) countPrune(s *succ) {
	switch {
	case s.permuted:
		r.e.x.Reduction.SymmetryPrunes++
	case s.elided:
		r.e.x.Reduction.ElisionPrunes++
	}
}

// reusable reports whether a prefetched expansion — computed by a pool
// owner from the store's representative for nd's dedup handle — can stand
// in for the expansion of the canonical-order node nd. Expansion is a pure
// function of the source node's full content including the channel
// sequence counters, which the dedup handle deliberately excludes: two
// handle-equal nodes can disagree on the identities future messages would
// get, and which one the speculative store kept is a race. Under a
// canonicalizing reduction the stored node may further be a different
// class sibling entirely (other frame, other dead letters, other inputs),
// so the full own-frame content is compared; otherwise handle equality
// already pins the content (exactly under the key-bearing engines, modulo
// digest collision under fingerprint dedup) and only the counters need
// checking. A mismatch makes the caller re-expand from nd on demand.
func (r *replayer) reusable(stored *succ, nd *node) bool {
	if stored == nil || stored.nd == nil {
		return false
	}
	if stored.nd == nd {
		return true
	}
	if r.e.canonicalizing() {
		return sameNode(stored.nd, nd)
	}
	return stored.nd.cfg.SameChannelSeqs(nd.cfg)
}

// resolve admits one successor against the replay's visited set and
// resolves its materialized node: from the succ itself when the expanding
// worker materialized it, re-derived from the walked parent when the
// successor was already in the racy shared set at expansion time. The
// store's admitted-implies-stored representative is NOT adopted: it is
// content-equal by handle but its channel sequence counters may have
// drifted (and under canonicalization it may be a different class sibling
// entirely), and which representative the store kept is a race — the
// canonical replay must record the node the parallelism-1 walk would have.
// Rejected successors whose handle was rewritten by a canonicalization
// count as symmetry or elision prunes.
func (r *replayer) resolve(parent *node, s *succ) (*succ, bool, error) {
	e := r.e
	if e.pool == nil {
		if s.nd == nil || !e.admit(s) {
			r.countPrune(s)
			return nil, false, nil
		}
		return s, true, nil
	}
	if !e.seq.Admit(s.fp, s.key) {
		r.countPrune(s)
		return nil, false, nil
	}
	if s.nd == nil {
		if err := r.materialize(parent, s); err != nil {
			return nil, false, err
		}
	}
	return s, true, nil
}

// materialize builds the accepted successor's node from the walked parent —
// the same derivation expandEvents performs, applied to the canonical-order
// parent so the node's content (including channel sequence counters) is a
// pure function of the canonical walk. Only reached with the pool, for
// accepted successors whose expansion found the handle already in the
// shared set; roots are always materialized.
func (r *replayer) materialize(parent *node, s *succ) error {
	e := r.e
	if parent == nil {
		panic("checker: unmaterialized root successor")
	}
	cfg, _, err := sim.Apply(e.proto, parent.cfg, s.event)
	if err != nil {
		return fmt.Errorf("checker: exploring %s: %w", e.proto.Name(), err)
	}
	nxt := &node{cfg: cfg, ledger: updateLedger(parent.ledger, cfg), inputs: parent.inputs, vec: parent.vec}
	nxt.fp, nxt.ckey = s.fp, s.key
	s.nd = nxt
	s.terminal = cfg.Quiescent()
	s.stateKeys = e.stateKeysOf(nxt)
	if e.opts.Problem != nil {
		s.nodeViol = nodeViolations(*e.opts.Problem, nxt)
	}
	return nil
}

// walk folds one node's expansion into the exploration in canonical order
// (the node's edges in event order). stop is set when the exploration
// should end with the current partial result (first violation reached, or
// budget exhausted — the latter also carries a *BudgetError).
func (r *replayer) walk(parent *node, exp *expansion) (stop bool, err error) {
	e, x := r.e, r.e.x
	if exp.err != nil {
		return false, exp.err
	}
	for j := range exp.succs {
		s := &exp.succs[j]
		if parent != nil {
			if x.parents != nil {
				if _, ok := x.parents[s.key]; !ok {
					x.parents[s.key] = parentLink{parent: parent.ckey, event: s.event}
				}
			} else if x.parentsFP != nil {
				if _, ok := x.parentsFP[s.fp]; !ok {
					x.parentsFP[s.fp] = parentLinkFP{parent: parent.fp, event: s.event}
				}
			}
		}
		for _, v := range s.edgeViol {
			x.addViolation(v, s)
		}
		if e.opts.StopAtFirstViolation && len(x.Violations) > 0 {
			return true, nil
		}
		acc, ok, rerr := r.resolve(parent, s)
		if rerr != nil {
			return false, rerr
		}
		if !ok {
			continue
		}
		if len(x.Configs) >= e.opts.maxNodes() {
			x.Status = StatusExhausted
			x.FrontierSize = r.frontierLeft()
			return true, &BudgetError{Protocol: e.proto.Name(), Nodes: e.opts.maxNodes()}
		}
		e.record(acc)
		e.census.add(acc.nd, acc.stateKeys)
		for _, v := range acc.nodeViol {
			x.addViolation(v, acc)
		}
		if e.opts.StopAtFirstViolation && len(x.Violations) > 0 {
			return true, nil
		}
		r.queue = append(r.queue, acc.nd)
	}
	return false, nil
}

// record accepts one newly discovered configuration: assigns interned state
// indices in discovery order and appends the ConfigRecord. Merge-phase only.
func (e *explorer) record(s *succ) {
	x := e.x
	idx := make([]int32, len(s.stateKeys))
	for p, key := range s.stateKeys {
		id, ok := x.stateIdx[key]
		if !ok {
			id = int32(len(x.stateKeys))
			x.stateIdx[key] = id
			x.stateKeys = append(x.stateKeys, key)
		}
		idx[p] = id
	}
	// The ledger is aliased, not copied: updateLedger builds a fresh slice
	// per node and nothing mutates one after construction, so the record
	// can share it. (Dropping the copy removed a per-node allocation from
	// the replay pass, the sequential Amdahl bottleneck.)
	x.Configs = append(x.Configs, ConfigRecord{
		StateIdx:  idx,
		Ledger:    s.nd.ledger,
		InputsVec: s.nd.vec,
		Terminal:  s.terminal,
	})
	if s.terminal {
		x.Terminals++
	}
}

// finalize publishes the aggregate state census, the node count, and (in
// verified mode) the collision count — from the replay's sequential set
// when the pool ran, so the count reflects canonical admissions only.
func (e *explorer) finalize() {
	e.census.close()
	e.x.States = e.states.Snapshot()
	e.x.NodeCount = len(e.x.Configs)
	switch {
	case e.seq != nil && e.dedup == frontier.DedupVerified:
		e.x.Collisions = e.seq.Collisions()
	case e.fpVerified != nil && e.seq == nil:
		e.x.Collisions = e.fpVerified.Collisions()
	}
}

// ExploreContext is Explore with graceful degradation: on context
// cancellation or budget exhaustion it returns the partial Exploration —
// visited nodes, aggregated states, and every violation found so far, with
// Status and FrontierSize set — alongside a non-nil error (the context's
// error or a *BudgetError). Callers that can use partial results should
// inspect the returned Exploration even when err != nil.
func ExploreContext(ctx context.Context, proto sim.Protocol, opts Options) (*Exploration, error) {
	n := proto.N()
	maxFail := opts.MaxFailures
	if maxFail < 0 {
		maxFail = n - 1
	}
	inputVecs := opts.Inputs
	if inputVecs == nil {
		inputVecs = sim.AllInputs(n)
	}
	pol := opts.omission()
	if pol.Enabled() && n > 64 {
		return nil, fmt.Errorf("checker: omission budgets support at most 64 processors, got %d", n)
	}
	failAllowed := make([]bool, n)
	if opts.FailProcs == nil {
		for i := range failAllowed {
			failAllowed[i] = true
		}
	} else {
		for _, p := range opts.FailProcs {
			failAllowed[p] = true
		}
	}

	x := &Exploration{
		Proto:    proto,
		Opts:     opts,
		stateIdx: make(map[string]int32),
	}
	if opts.TrackTraces {
		if opts.Dedup == frontier.DedupFingerprint {
			x.parentsFP = make(map[fingerprint.Digest]parentLinkFP)
			x.rootKeys = make(map[fingerprint.Digest]string)
		} else {
			x.parents = make(map[string]parentLink)
		}
	}
	e := &explorer{
		proto:       proto,
		n:           n,
		opts:        opts,
		maxFail:     maxFail,
		failAllowed: failAllowed,
		x:           x,
		dedup:       opts.Dedup,
		interner:    frontier.NewInterner(),
		states:      frontier.NewShardedMap[*StateInfo](),
	}
	switch opts.Dedup {
	case frontier.DedupFingerprint:
		e.fpVisited = frontier.NewFPVisitedSet()
		e.keyCache = frontier.NewFPShardedMap[string]()
		e.predictor = sim.NewPredictor()
	case frontier.DedupVerified:
		e.fpVerified = frontier.NewFPVerifiedSet()
	default:
		e.visited = frontier.NewVisitedSet()
	}
	e.initReduction()
	e.clock = opts.Clock

	workers := frontier.Parallelism(opts.Parallelism)
	e.routeFP = opts.Dedup == frontier.DedupStrings && workers > 1

	// Level 0: one root per requested input vector, walked through the
	// same path as every other node (no parent links, no decision edge).
	roots := make([]succ, 0, len(inputVecs))
	for _, inputs := range inputVecs {
		if len(inputs) != n {
			return nil, fmt.Errorf("checker: input vector %v has length %d, want %d", inputs, len(inputs), n)
		}
		start := &node{cfg: sim.NewConfigOmission(proto, inputs, pol), ledger: make([]sim.Decision, n), inputs: inputs, vec: inputsKey(inputs)}
		s := succ{nd: start, terminal: start.cfg.Quiescent()}
		switch opts.Dedup {
		case frontier.DedupFingerprint:
			start.fp = nodeFP(start)
			s.fp = start.fp
		case frontier.DedupVerified:
			start.ckey = start.key()
			start.fp = nodeFP(start)
			s.key, s.fp = start.ckey, start.fp
		default:
			start.ckey = start.key()
			s.key = start.ckey
			if e.routeFP {
				start.fp = fingerprint.OfString(start.ckey)
				s.fp = start.fp
			}
		}
		if e.canonicalizing() {
			// Symmetric input vectors collapse to one explored root; the
			// replay's admission keeps the first.
			e.canonicalizeSucc(start, &s)
		}
		if x.rootKeys != nil {
			// First-wins: under symmetry two roots can share a canonical
			// fingerprint, and the admitted one is the first.
			if _, ok := x.rootKeys[start.fp]; !ok {
				x.rootKeys[start.fp] = start.key()
			}
		}
		s.stateKeys = e.stateKeysOf(start)
		if opts.Problem != nil {
			s.nodeViol = nodeViolations(*opts.Problem, start)
		}
		roots = append(roots, s)
	}

	if workers > 1 {
		// The partitioned pool speculatively admits (shared set) and
		// expands ahead of the replay; it may overshoot the node budget
		// or stop early — the replay is the only authority on results.
		e.seq = frontier.NewSeqVisited(opts.Dedup)
		pool := frontier.NewPool(frontier.PoolOptions[*succ, expansion]{
			Workers: workers,
			Cap:     int64(opts.maxNodes()),
			KeyOf:   func(s *succ) frontier.NodeKey { return frontier.NodeKey{FP: s.fp, Key: s.key} },
			Admit:   func(s *succ) bool { return e.admit(s) },
			Expand:  e.expandForPool,
		})
		e.pool = pool
		rootPtrs := make([]*succ, len(roots))
		for i := range roots {
			rootPtrs[i] = &roots[i]
		}
		pool.Start(ctx, rootPtrs)
		defer pool.Close()
	}
	e.census = e.newCensusSink(workers)
	defer e.census.close()

	r := &replayer{e: e}
	err := r.run(ctx, roots)
	if err != nil {
		var be *BudgetError
		if errors.As(err, &be) {
			e.finalize()
			return x, be
		}
		if x.Status == StatusInterrupted {
			e.finalize()
			return x, err
		}
		// A protocol error (sim.Apply failed) aborts with no result,
		// matching the previous explorer.
		return nil, err
	}
	e.finalize()
	return x, nil
}

// expandForPool is the pool's Expand callback: it generates the node's
// successors and routes onward every materialized one (a nil-node succ is
// already in the shared set and needs no owner). A protocol error stops
// the pool — the replay re-derives and reports it in canonical order.
func (e *explorer) expandForPool(s *succ) (expansion, []*succ) {
	exp := e.expand(s.nd)
	if exp.err != nil {
		e.pool.Stop()
		return exp, nil
	}
	var routed []*succ
	for j := range exp.succs {
		if exp.succs[j].nd != nil {
			routed = append(routed, &exp.succs[j])
		}
	}
	return exp, routed
}

// BudgetError reports that exploration exceeded its node budget.
type BudgetError struct {
	Protocol string
	Nodes    int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("checker: exploration of %s exceeded %d nodes", e.Protocol, e.Nodes)
}

// updateLedger extends the decision ledger with any decisions visible in the
// configuration. Decisions are irrevocable (sim enforces it), so a visible
// decision can only confirm or extend the ledger.
func updateLedger(old []sim.Decision, cfg *sim.Config) []sim.Decision {
	out := append([]sim.Decision(nil), old...)
	for p, s := range cfg.States {
		if d, ok := s.Decided(); ok {
			out[p] = d
		}
	}
	return out
}

// kindOf returns the state kind for an interned index.
func (x *Exploration) kindOf(i int32) sim.StateKind {
	return x.States[x.stateKeys[i]].Sample.Kind()
}

// decisionOf returns the visible decision for an interned index.
func (x *Exploration) decisionOf(i int32) sim.Decision {
	return x.States[x.stateKeys[i]].Decision()
}
