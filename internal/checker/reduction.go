package checker

import (
	"fmt"

	"repro/internal/fingerprint"
	"repro/internal/frontier"
	"repro/internal/sim"
	"repro/internal/symmetry"
)

// Reduction selects the state-space reductions an exploration applies.
// Both reductions preserve the conformance verdict (the set of violation
// kinds) and the terminal decision structure — ample sets preserve the
// exact terminal configurations and decision census; symmetry preserves
// them up to processor relabeling — but a reduced run visits fewer
// intermediate configurations, so NodeCount, the Configs list, and the
// state census describe the reduced graph, not the full one. DESIGN.md §8
// states the soundness arguments; the reduction differential suite
// cross-checks every reduced mode against the unreduced strings engine.
type Reduction int

const (
	// ReduceNone explores every interleaving (the default).
	ReduceNone Reduction = iota
	// ReduceAmple applies ample-set partial-order reduction — at a
	// configuration where some processor is mid-send, only that
	// processor's events are expanded (see ampleProc) — plus dead-letter
	// elision: the dedup handle erases messages addressed to failed or
	// halted processors, which can never be delivered, so configurations
	// differing only in that inert garbage collapse to one node (see
	// sim.Config.WithoutDeadBuffers).
	ReduceAmple
	// ReduceSymmetry canonicalizes each node's dedup handle by minimizing
	// over the protocol topology's automorphism group (internal/symmetry),
	// collapsing symmetric configurations to one representative. Protocols
	// without a usable group explore unreduced.
	ReduceSymmetry
	// ReduceBoth applies both reductions.
	ReduceBoth
)

// String names the reduction for flags and reports.
func (r Reduction) String() string {
	switch r {
	case ReduceNone:
		return "none"
	case ReduceAmple:
		return "ample"
	case ReduceSymmetry:
		return "symmetry"
	case ReduceBoth:
		return "both"
	default:
		return "invalid"
	}
}

// ParseReduction parses a -reduce flag value.
func ParseReduction(s string) (Reduction, error) {
	switch s {
	case "", "none":
		return ReduceNone, nil
	case "ample":
		return ReduceAmple, nil
	case "symmetry":
		return ReduceSymmetry, nil
	case "both":
		return ReduceBoth, nil
	}
	return 0, fmt.Errorf("bad reduction %q (want none, ample, symmetry, or both)", s)
}

// ample reports whether ample-set reduction is on.
func (r Reduction) ample() bool { return r == ReduceAmple || r == ReduceBoth }

// usesSymmetry reports whether symmetry canonicalization is on.
func (r Reduction) usesSymmetry() bool { return r == ReduceSymmetry || r == ReduceBoth }

// ReductionStats are the deterministic reduction counters of one
// exploration, all counted by the canonical replay so they are
// byte-identical at every parallelism level.
type ReductionStats struct {
	// AmpleNodes / FullNodes split the walked expansions into reduced
	// (ample subset) and full ones. Unreduced runs count everything in
	// FullNodes.
	AmpleNodes int
	FullNodes  int
	// AmpleEvents / FullEvents count the successor edges those expansions
	// generated; AmpleEvents/AmpleNodes is the average ample-set size.
	AmpleEvents int64
	FullEvents  int64
	// ProvisoFallbacks counts reduced expansions the replay re-expanded in
	// full because every reduced successor was already visited (the ample
	// progress proviso; see provisoHit). They are counted under FullNodes.
	ProvisoFallbacks int
	// SymmetryPrunes counts rejected successors whose dedup handle was
	// canonicalized away from their own frame by a non-identity
	// automorphism — admissions that only symmetry made into duplicates.
	SymmetryPrunes int64
	// ElisionPrunes counts rejected successors whose dedup handle was
	// computed with dead letters erased — configurations that only differ
	// from an already-visited one in messages addressed to failed or
	// halted processors.
	ElisionPrunes int64
}

// ampleProc picks the ample processor of a configuration: the
// lowest-indexed processor in a Sending state, if any.
//
// Why {SendStep(p), Fail(p)} is a sound ample set at such a configuration:
// while p is Sending, no event of any other processor can read or write
// p's state, deliveries to p are not applicable, and p's two events are
// independent of every other enabled event — SendStep(p)/Fail(p) touch p's
// state and append messages on p's outgoing channels (per-channel sequence
// numbers are disjoint from every other processor's), and buffer inserts
// commute with other inserts and with removals of different messages. So
// every run from the configuration is Mazurkiewicz-equivalent to one
// taking an ample event first (C1), the set is nonempty whenever any event
// is enabled at a non-quiescent configuration with a Sending processor
// (C0), and deferred events stay enabled. The cycle condition is enforced
// at replay time by provisoHit.
func ampleProc(cfg *sim.Config) (sim.ProcID, bool) {
	for p := range cfg.States {
		if cfg.States[p].Kind() == sim.Sending {
			return sim.ProcID(p), true
		}
	}
	return 0, false
}

// appendAmpleEvents appends the ample events for processor p: its sending
// step, plus its failure when the failure budget and FailProcs allow it.
func (e *explorer) appendAmpleEvents(events []sim.Event, p sim.ProcID, failedCount int) []sim.Event {
	events = append(events, sim.Event{Proc: p, Type: sim.SendStepEvent})
	if failedCount < e.maxFail && e.failAllowed[p] {
		events = append(events, sim.Event{Proc: p, Type: sim.Fail})
	}
	return events
}

// provisoHit reports whether every successor of a reduced expansion is
// already in the canonical visited set; the replay then substitutes the
// full expansion. This is the breadth-first form of the ample progress
// proviso (Bošnački/Holzmann): every walked reduced expansion either
// discovers at least one new state or is expanded in full, so the
// exploration can never spin over a closed reduced component while
// indefinitely deferring the independent events.
//
// The reachability properties the checker reports do not lean on this
// condition at all — every full-graph terminal configuration and violating
// edge/node is reachable inside the reduced graph by the run-commutation
// argument of DESIGN.md §8, which only needs the ample set to contain all
// of the ample processor's enabled events. The proviso exists so a reduced
// exploration also keeps the structural guarantee the standard theory
// wants from BFS ample sets; full LTL-style liveness over cycles (which
// the six-problem lattice never asks for) would need the stricter
// any-revisit fallback, documented and rejected in DESIGN.md §8.
//
// At parallelism 1 the shared visited set is the canonical set and expand
// consults it inline, so a nil successor node means visited; with the pool
// the canonical set is the replay's own SeqVisited.
func (r *replayer) provisoHit(exp *expansion) bool {
	e := r.e
	for j := range exp.succs {
		s := &exp.succs[j]
		if e.pool != nil {
			if !e.seq.Seen(s.fp, s.key) {
				return false
			}
		} else if s.nd != nil {
			return false
		}
	}
	return true
}

// canonicalizing reports whether dedup handles are canonical forms rather
// than the successor's own fingerprint/key: dead-letter elision or
// symmetry canonicalization (or both) rewrite the handle.
func (e *explorer) canonicalizing() bool {
	return e.elide || len(e.symPerms) > 0
}

// canonicalizeSucc replaces the successor's dedup handle with its
// canonical form. Two canonicalizations compose:
//
// Dead-letter elision (ample modes) erases the buffers of failed and
// halted processors before hashing, so configurations that differ only in
// permanently undeliverable messages share one handle. The erased view is
// a bisimulation quotient — see sim.Config.WithoutDeadBuffers.
//
// Symmetry (symmetry modes) minimizes the handle over the topology
// automorphism group's orbit: for each automorphism, the candidate handle
// is the permuted (erased) node's fingerprint/key in the mode the dedup
// engine compares, and the minimum (fingerprint by Digest.Less, key by
// string order, verified by fingerprint with the key riding along from
// the same candidate) wins. Erasure and permutation commute — an
// automorphism relocates a processor's state and buffer together — so
// erasing first is both correct and cheaper.
//
// The final handle lands on both the succ and the node. The node itself
// stays in its own frame — every stored configuration is genuinely
// reachable and traces replay unchanged — only the handle is canonical,
// so the first-reached member of a class represents the class.
//
// Runs wherever expand runs; WithoutDeadBuffers and sim.PermuteConfig are
// pure, so this is safe on pool workers and deterministic for the replay.
func (e *explorer) canonicalizeSucc(nxt *node, s *succ) {
	base := nxt.cfg
	if e.elide {
		if erased, changed := base.WithoutDeadBuffers(); changed {
			base, s.elided = erased, true
			cand := &node{cfg: base, ledger: nxt.ledger}
			switch e.dedup {
			case frontier.DedupFingerprint:
				s.fp = nodeFP(cand)
			case frontier.DedupVerified:
				s.fp, s.key = nodeFP(cand), cand.key()
			default:
				s.key = cand.key()
			}
		}
	}
	for _, perm := range e.symPerms {
		pcfg, ok := sim.PermuteConfig(base, perm)
		if !ok {
			panic("checker: symmetry group present but state does not implement sim.Permuter")
		}
		cand := &node{cfg: pcfg, ledger: permuteLedger(nxt.ledger, perm)}
		switch e.dedup {
		case frontier.DedupFingerprint:
			if fp := nodeFP(cand); fp.Less(s.fp) {
				s.fp, s.permuted = fp, true
			}
		case frontier.DedupVerified:
			fp := nodeFP(cand)
			if fp.Less(s.fp) {
				s.fp, s.key, s.permuted = fp, cand.key(), true
			}
		default:
			if key := cand.key(); key < s.key {
				s.key, s.permuted = key, true
			}
		}
	}
	switch e.dedup {
	case frontier.DedupFingerprint:
		nxt.fp = s.fp
	case frontier.DedupVerified:
		nxt.fp, nxt.ckey = s.fp, s.key
	default:
		nxt.ckey = s.key
		if e.routeFP {
			nxt.fp = fingerprint.OfString(nxt.ckey)
			s.fp = nxt.fp
		}
	}
}

// sameNode reports whether two materialized nodes are interchangeable as
// expansion sources: identical configuration content in their own frames
// (states, all buffers including dead letters, inputs — compared by the
// configuration's own fingerprint), identical channel sequence counters
// (they decide the identities of future messages, and Key/Fingerprint
// exclude them), identical decision ledgers, and the same input vector
// label. Expansion is a pure function of exactly that content, so when
// sameNode holds, an expansion prefetched from a is byte-equivalent to one
// computed from b. Used by the canonical replay to decide whether the
// pool's stored class representative can stand in for the canonical-order
// node.
func sameNode(a, b *node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	if a.vec != b.vec || len(a.ledger) != len(b.ledger) {
		return false
	}
	for p := range a.ledger {
		if a.ledger[p] != b.ledger[p] {
			return false
		}
	}
	return a.cfg.SameChannelSeqs(b.cfg) && a.cfg.Fingerprint() == b.cfg.Fingerprint()
}

// permuteLedger relabels a decision ledger: processor p's decision moves
// to position perm[p].
func permuteLedger(ledger []sim.Decision, perm sim.ProcPerm) []sim.Decision {
	out := make([]sim.Decision, len(ledger))
	for p, d := range ledger {
		out[perm[p]] = d
	}
	return out
}

// initReduction resolves the exploration's reduction configuration: the
// ample modes switch on ample-set expansion and dead-letter elision, the
// symmetry modes resolve the protocol's automorphism group (empty for
// protocols without usable symmetry, which then canonicalize nothing).
//
// When an omission budget is enabled, every reduction is conservatively
// disabled and the space explores in full (DESIGN.md §8):
//
//   - Ample sets: Omit(q, µ) does not commute with its target's events the
//     way the {SendStep(p), Fail(p)} argument needs — an omission charges
//     the shared budget and (in mobile mode) flips q's faulty bit, so
//     deferring it past p's sending burst can reach configurations whose
//     remaining budget differs, which are distinct nodes.
//   - Dead-letter elision: messages addressed to failed or halted
//     processors are no longer inert — Omit is structurally applicable to
//     a halted processor's buffer, and applying it changes the budget
//     accounting, so two configurations differing only in dead letters
//     are no longer bisimilar.
//   - Symmetry: canonical handles would have to permute the omission
//     bitmasks along with states and buffers, which PermuteConfig does
//     not do.
//
// Each could be re-enabled with a sharper argument (e.g. excluding Omit
// targets from the ample processor's independence set, erasing dead
// letters only when the budget is exhausted); until such a proof lands,
// correctness wins over speed.
func (e *explorer) initReduction() {
	if e.opts.omission().Enabled() {
		e.ample, e.elide, e.symPerms = false, false, nil
		return
	}
	e.ample = e.opts.Reduction.ample()
	e.elide = e.ample
	if e.opts.Reduction.usesSymmetry() {
		e.symPerms = symmetry.ForProtocol(e.proto)
	}
}
