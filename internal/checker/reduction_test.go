package checker

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/frontier"
	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/symmetry"
	"repro/internal/taxonomy"
)

// The reduction differential suite cross-checks every reduced mode against
// the unreduced string-keyed engine. A reduced exploration visits a
// different (smaller) node set, so the byte-level digest is NOT expected to
// match the reference; what must match is the semantics the reductions
// promise to preserve:
//
//   - the verdict: the set of violation kinds (ample modes additionally
//     preserve every violation's decide-edge context, but instance counts
//     shrink with the edge set);
//   - the decision census: the set of (inputs vector, decision ledger)
//     pairs over terminal configurations — exactly under ample modes,
//     up to processor relabeling under symmetry modes;
//   - the local-state census under ample modes (run commutation preserves
//     each processor's local history; dead-letter elision never touches a
//     local state);
//   - trace validity: a violating reduced run carries a non-empty
//     FirstTrace, a conforming one carries none.
//
// Reduced runs must additionally be deterministic: byte-identical results
// per (mode, dedup engine) across parallelism levels, including
// budget-partial and cancelled runs.
var reductionModes = []Reduction{ReduceAmple, ReduceSymmetry, ReduceBoth}

var reductionParallelism = []int{1, 8}

// reductionDedups are the engines the reduced matrix runs on. The verified
// engine rides along in the partial-determinism matrix; here the
// string-keyed and fingerprint engines cover both canonical-handle
// representations (minimal key vs minimal digest pick different orbit
// representatives, so engines are compared semantically, not byte-wise).
var reductionDedups = []frontier.Dedup{frontier.DedupStrings, frontier.DedupFingerprint}

// reductionCase is one complete exploration compared semantically against
// the unreduced reference. Perverse is absent: its mf≥1 state space does
// not terminate within any practical budget (it is the cyclic stress
// protocol), so it appears only in the partial and cancelled matrices.
type reductionCase struct {
	name  string
	proto sim.Protocol
	opts  Options
	big   bool // skipped in -short runs
}

func reductionCases() []reductionCase {
	return []reductionCase{
		{"tree-mf2", protocols.Tree{Procs: 3}, Options{MaxFailures: 2}, false},
		{"star-mf2", protocols.Star{Procs: 3}, Options{MaxFailures: 2}, false},
		{"chain-mf2", protocols.Chain{Procs: 3}, Options{MaxFailures: 2}, false},
		{"fullexchange-mf0", protocols.FullExchange{Procs: 3}, Options{MaxFailures: 0}, false},
		{"fullexchange-mf1", protocols.FullExchange{Procs: 3}, Options{MaxFailures: 1}, true},
		{"ackcommit-mf2", protocols.AckCommit{Procs: 3}, Options{MaxFailures: 2}, true},
		{"haltingcommit-mf2", protocols.HaltingCommit{Procs: 3}, Options{MaxFailures: 2}, false},
	}
}

// violationKinds reduces an exploration's violations to the sorted set of
// distinct kinds — the verdict the reductions preserve.
func violationKinds(x *Exploration) []string {
	set := map[string]struct{}{}
	for _, v := range x.Violations {
		set[fmt.Sprint(v.Kind)] = struct{}{}
	}
	return sortedSet(set)
}

// decisionCensus renders the set of (inputs vector, decision ledger) pairs
// over terminal configurations, sorted.
func decisionCensus(x *Exploration) []string {
	set := map[string]struct{}{}
	for i := range x.Configs {
		c := &x.Configs[i]
		if c.Terminal {
			set[censusLine(c.InputsVec, c.Ledger)] = struct{}{}
		}
	}
	return sortedSet(set)
}

// canonicalDecisionCensus orbit-canonicalizes the decision census: each
// (vector, ledger) pair is replaced by its minimum over the automorphism
// group, so censuses taken in different orbit frames become comparable.
// With an empty group this is decisionCensus.
func canonicalDecisionCensus(x *Exploration, perms []sim.ProcPerm) []string {
	set := map[string]struct{}{}
	for i := range x.Configs {
		c := &x.Configs[i]
		if !c.Terminal {
			continue
		}
		best := censusLine(c.InputsVec, c.Ledger)
		for _, perm := range perms {
			vec := make([]byte, len(c.InputsVec))
			led := make([]sim.Decision, len(c.Ledger))
			for p := range c.Ledger {
				vec[perm[p]] = c.InputsVec[p]
				led[perm[p]] = c.Ledger[p]
			}
			if line := censusLine(string(vec), led); line < best {
				best = line
			}
		}
		set[best] = struct{}{}
	}
	return sortedSet(set)
}

func censusLine(vec string, ledger []sim.Decision) string {
	return fmt.Sprintf("%s|%v", vec, ledger)
}

// stateCensusKeys returns the sorted distinct local-state keys of the
// aggregate census.
func stateCensusKeys(x *Exploration) []string {
	set := map[string]struct{}{}
	for k := range x.States {
		set[k] = struct{}{}
	}
	return sortedSet(set)
}

// reducedDigest is exploreDigest plus the reduction counters, so the
// per-mode determinism comparison also pins the stats the replay counts.
func reducedDigest(x *Exploration) string {
	return fmt.Sprintf("%+v\n%s", x.Reduction, exploreDigest(x))
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReductionDifferential explores every feasible library protocol to
// completion unreduced on the string-keyed sequential engine, then asserts
// that each reduced mode, on both handle representations and at
// parallelism 1 and 8, reproduces the verdict and the decision census —
// exactly under ample, up to relabeling under symmetry — while remaining
// byte-deterministic across parallelism within each (mode, engine) pair.
func TestReductionDifferential(t *testing.T) {
	prob := problem(taxonomy.WT, taxonomy.TC)
	for _, tc := range reductionCases() {
		t.Run(tc.name, func(t *testing.T) {
			if tc.big && testing.Short() {
				t.Skip("large reference space; skipped in -short")
			}
			opts := tc.opts
			opts.Parallelism = 1
			opts.Dedup = frontier.DedupStrings
			opts.Problem = &prob
			opts.TrackTraces = true
			ref, err := ExploreContext(context.Background(), tc.proto, opts)
			if err != nil {
				t.Fatalf("unreduced reference: %v", err)
			}
			perms := symmetry.ForProtocol(tc.proto)
			refKinds := violationKinds(ref)
			refCensus := decisionCensus(ref)
			refCanon := canonicalDecisionCensus(ref, perms)
			refStates := stateCensusKeys(ref)

			for _, mode := range reductionModes {
				for _, dedup := range reductionDedups {
					var base string
					for _, par := range reductionParallelism {
						name := fmt.Sprintf("%v/%v/p%d", mode, dedup, par)
						opts := tc.opts
						opts.Parallelism = par
						opts.Dedup = dedup
						opts.Problem = &prob
						opts.TrackTraces = true
						opts.Reduction = mode
						x, err := ExploreContext(context.Background(), tc.proto, opts)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if x.NodeCount > ref.NodeCount {
							t.Errorf("%s: reduced run grew the space: %d > %d nodes", name, x.NodeCount, ref.NodeCount)
						}
						if got := violationKinds(x); !equalStrings(got, refKinds) {
							t.Errorf("%s: verdict diverged: kinds %v, want %v", name, got, refKinds)
						}
						if mode == ReduceAmple {
							if got := decisionCensus(x); !equalStrings(got, refCensus) {
								t.Errorf("%s: decision census diverged (%d vs %d entries)", name, len(got), len(refCensus))
							}
							if got := stateCensusKeys(x); !equalStrings(got, refStates) {
								t.Errorf("%s: local-state census diverged (%d vs %d states)", name, len(got), len(refStates))
							}
						} else {
							if got := canonicalDecisionCensus(x, perms); !equalStrings(got, refCanon) {
								t.Errorf("%s: canonical decision census diverged (%d vs %d entries)", name, len(got), len(refCanon))
							}
						}
						if x.Conforms() != (len(refKinds) == 0) {
							t.Errorf("%s: conformance flipped", name)
						}
						if !x.Conforms() && len(x.FirstTrace) == 0 {
							t.Errorf("%s: violating run has no FirstTrace", name)
						}
						if x.Conforms() && len(x.FirstTrace) != 0 {
							t.Errorf("%s: conforming run has a FirstTrace", name)
						}
						d := reducedDigest(x)
						if par == reductionParallelism[0] {
							base = d
						} else if d != base {
							t.Errorf("%s: reduced run not deterministic across parallelism:\n%s", name, firstDiff(base, d))
						}
					}
				}
			}
		})
	}
}

// TestReductionPartialDeterminism asserts that budget-capped reduced
// explorations — which stop mid-space and report a partial prefix — are
// byte-identical across parallelism for every mode and engine, on the
// diffCases matrix (including Perverse, whose full space never
// terminates, exercising the proviso on a cyclic graph).
func TestReductionPartialDeterminism(t *testing.T) {
	prob := problem(taxonomy.WT, taxonomy.TC)
	dedups := []frontier.Dedup{frontier.DedupStrings, frontier.DedupFingerprint, frontier.DedupVerified}
	for _, tc := range diffCases() {
		if tc.opts.MaxNodes == 0 {
			continue // the complete cases are covered by TestReductionDifferential
		}
		t.Run(tc.name, func(t *testing.T) {
			for _, mode := range reductionModes {
				for _, dedup := range dedups {
					var base string
					for _, par := range reductionParallelism {
						opts := tc.opts
						opts.Parallelism = par
						opts.Dedup = dedup
						opts.Problem = &prob
						opts.TrackTraces = true
						opts.Reduction = mode
						x, err := ExploreContext(context.Background(), tc.proto, opts)
						if x == nil {
							t.Fatalf("%v/%v/p%d: nil exploration (err=%v)", mode, dedup, par, err)
						}
						// A reduced run may fit the whole quotient space inside
						// the budget that truncates the full space (that is the
						// point of the reduction); the digest comparison below
						// still pins the status across parallelism.
						if x.Status != StatusExhausted && x.Status != StatusComplete {
							t.Fatalf("%v/%v/p%d: status %v, want budget-exhausted or complete", mode, dedup, par, x.Status)
						}
						d := reducedDigest(x)
						if par == reductionParallelism[0] {
							base = d
						} else if d != base {
							t.Errorf("%v/%v/p%d: partial reduced run diverges:\n%s", mode, dedup, par,
								firstDiff(base, d))
						}
					}
				}
			}
		})
	}
}

// TestReductionCancelledDeterminism asserts that a cancelled reduced
// exploration still yields identical partial snapshots at every
// parallelism level.
func TestReductionCancelledDeterminism(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prob := problem(taxonomy.WT, taxonomy.TC)
	for _, mode := range reductionModes {
		var base string
		for _, par := range reductionParallelism {
			x, err := ExploreContext(ctx, protocols.Star{Procs: 3}, Options{
				MaxFailures: 2, Parallelism: par, Problem: &prob, TrackTraces: true, Reduction: mode,
			})
			if x == nil {
				t.Fatalf("%v/p%d: nil exploration", mode, par)
			}
			if err == nil || x.Status != StatusInterrupted {
				t.Fatalf("%v/p%d: status = %v, err = %v, want interrupted", mode, par, x.Status, err)
			}
			d := reducedDigest(x)
			if par == reductionParallelism[0] {
				base = d
				if x.NodeCount < 1 {
					t.Fatalf("%v: cancelled exploration lost its partial snapshot", mode)
				}
				continue
			}
			if d != base {
				t.Errorf("%v/p%d: cancelled reduced partial diverges:\n%s", mode, par, firstDiff(base, d))
			}
		}
	}
}
