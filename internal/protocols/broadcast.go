package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Broadcast is reliable broadcast under fail-stop failures — the fail-stop
// incarnation of the Byzantine Generals problem mentioned in the paper's
// introduction ([SGS], [PSL]) — with the weak broadcast decision rule:
// decide v only if the general's initial value is v, with a default decision
// of 0 permitted when the general is faulty.
//
// The general p0 decides its own input immediately and broadcasts it; every
// processor relays the first value it learns to all other participants
// before deciding it, so that a value received by any nonfaulty processor
// reaches all of them. Failure detection diverts processors into the
// Appendix termination protocol with bias committable iff they hold the
// value 1; the termination decision is then 1 iff committable, 0 otherwise
// (the weak rule's default).
//
// The protocol establishes WT-IC for the broadcast rule. It does not halt
// (weak termination only), matching the cost-reduction motivation of [SGS].
type Broadcast struct {
	// Procs is the number of processors (≥ 2); p0 is the general.
	Procs int
}

var _ sim.Protocol = Broadcast{}

// Name implements sim.Protocol.
func (b Broadcast) Name() string { return fmt.Sprintf("broadcast(N=%d)", b.Procs) }

// N implements sim.Protocol.
func (b Broadcast) N() int { return b.Procs }

type bcastPhase int

const (
	bcastWait bcastPhase = iota + 1 // awaiting the general's value
	bcastDone                       // decided (keeps listening: WT)
	bcastTerm                       // termination protocol
)

func (p bcastPhase) String() string {
	switch p {
	case bcastWait:
		return "wait"
	case bcastDone:
		return "done"
	case bcastTerm:
		return "term"
	default:
		return "invalid"
	}
}

// bcastState is the local state of one Broadcast processor.
type bcastState struct {
	self  sim.ProcID
	n     int
	input sim.Bit
	phase bcastPhase

	haveValue bool
	value     sim.Bit

	out     []outItem
	decided sim.Decision

	removed procSet
	term    termCore
}

var _ sim.State = bcastState{}

// Kind implements sim.State.
func (s bcastState) Kind() sim.StateKind {
	switch {
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == bcastTerm && s.term.sending():
		return sim.Sending
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s bcastState) Decided() (sim.Decision, bool) {
	if s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s bcastState) Amnesic() bool { return false }

// Key implements sim.State.
func (s bcastState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bc{%s n%d in%d %s", s.self, s.n, s.input, s.phase)
	if s.haveValue {
		fmt.Fprintf(&sb, " v%d", s.value)
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == bcastTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// Init implements sim.Protocol.
func (b Broadcast) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := bcastState{self: p, n: n, input: input}
	if p == 0 {
		// The general knows the value: it decides and broadcasts.
		s.haveValue, s.value = true, input
		s.decided = sim.DecisionFor(input)
		s.phase = bcastDone
		for _, q := range allProcs(n).del(0).members() {
			s.out = appendOut(s.out, outItem{to: q, payload: valMsg{V: input}})
		}
	} else {
		s.phase = bcastWait
	}
	return s
}

// SendStep implements sim.Protocol.
func (b Broadcast) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(bcastState)
	if !ok {
		return state, nil
	}
	switch {
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}
	case s.phase == bcastTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s, []sim.Envelope{env}
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (b Broadcast) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(bcastState)
	if !ok {
		return state
	}
	from := m.ID.From

	if m.Notice || isTermPayload(m.Payload) {
		if s.phase != bcastTerm {
			s = s.enterBcastTerm()
		}
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s
	}

	switch s.phase {
	case bcastWait:
		if v, ok := m.Payload.(valMsg); ok {
			// Relay the value to every other participant, then
			// decide it.
			s.haveValue, s.value = true, v.V
			s.decided = sim.DecisionFor(v.V)
			s.phase = bcastDone
			for _, q := range allProcs(s.n).del(0).del(s.self).members() {
				if q == from {
					continue
				}
				s.out = appendOut(s.out, outItem{to: q, payload: valMsg{V: v.V}})
			}
		}
	case bcastDone:
		// Duplicate relayed values are ignored.
	case bcastTerm:
		// Late relayed values are ignored; a holder of the value 1 is
		// committable at termination entry and spreads it through the
		// round exchange. See Tree.Receive.
	}
	return s
}

// enterBcastTerm switches into the termination protocol: committable iff the
// processor holds the value 1.
func (s bcastState) enterBcastTerm() bcastState {
	s.phase = bcastTerm
	s.out = nil
	committable := s.haveValue && s.value == sim.One
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, committable, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
	}
	return s
}
