package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// AckCommit is a star-shaped WT-TC commit protocol for arbitrary N — the
// depth-one instance of Figure 1's tree scheme, and the core idea of
// nonblocking (three-phase) commit: no processor decides commit until every
// processor has acknowledged the committable bias, so every accessible state
// is safe in the sense of Theorem 2.
//
// Phase 1: participants send their inputs to the coordinator p0, which sets
// bias committable iff every input (including its own) is 1 and sends the
// bias to every participant whose input was 1 (participants with input 0
// abort immediately after voting, and receive nothing — Figure 1's starred
// rule). A noncommittable bias makes everyone abort.
//
// Phase 2: participants acknowledge the committable bias; after all
// acknowledgements the coordinator decides commit and broadcasts commit.
//
// Failures divert processors into the Appendix termination protocol.
type AckCommit struct {
	// Procs is the number of processors (≥ 2).
	Procs int
}

var _ sim.Protocol = AckCommit{}

// Name implements sim.Protocol.
func (a AckCommit) Name() string { return fmt.Sprintf("ackcommit(N=%d)", a.Procs) }

// N implements sim.Protocol.
func (a AckCommit) N() int { return a.Procs }

type ackPhase int

const (
	ackCollect    ackPhase = iota + 1 // coordinator gathering votes
	ackWaitAcks                       // coordinator awaiting acknowledgements
	ackWaitBias                       // participant awaiting the bias
	ackWaitCommit                     // participant acked, awaiting commit
	ackDone                           // decided (keeps listening: WT)
	ackTerm                           // termination protocol
)

func (p ackPhase) String() string {
	switch p {
	case ackCollect:
		return "collect"
	case ackWaitAcks:
		return "wait-acks"
	case ackWaitBias:
		return "wait-bias"
	case ackWaitCommit:
		return "wait-commit"
	case ackDone:
		return "done"
	case ackTerm:
		return "term"
	default:
		return "invalid"
	}
}

// ackState is the local state of one AckCommit processor.
type ackState struct {
	self  sim.ProcID
	n     int
	input sim.Bit
	phase ackPhase

	heard     procSet
	conj      sim.Bit
	zeros     procSet // participants that voted 0 (skipped for bias)
	acks      procSet
	biasKnown bool
	bias      bool

	out       []outItem
	afterSend sim.Decision
	decided   sim.Decision

	removed procSet
	term    termCore
}

var _ sim.State = ackState{}

// Kind implements sim.State.
func (s ackState) Kind() sim.StateKind {
	switch {
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == ackTerm && s.term.sending():
		return sim.Sending
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s ackState) Decided() (sim.Decision, bool) {
	if s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s ackState) Amnesic() bool { return false }

// Key implements sim.State.
func (s ackState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ack{%s n%d in%d %s heard%s conj%d z%s acks%s",
		s.self, s.n, s.input, s.phase, s.heard.key(), s.conj, s.zeros.key(), s.acks.key())
	if s.biasKnown {
		fmt.Fprintf(&sb, " bias%v", s.bias)
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.afterSend != sim.NoDecision {
		fmt.Fprintf(&sb, " after:%s", s.afterSend)
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == ackTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// Init implements sim.Protocol.
func (a AckCommit) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := ackState{self: p, n: n, input: input, conj: input}
	if p == 0 {
		s.phase = ackCollect
		if n == 1 {
			s.decided = sim.DecisionFor(input)
			s.phase = ackDone
		}
		return s
	}
	s.out = []outItem{{to: 0, payload: valMsg{V: input}}}
	if input == sim.Zero {
		// A participant voting 0 knows the bias is noncommittable; it
		// aborts right after voting and receives no bias message.
		s.phase = ackDone
		s.afterSend = sim.Abort
	} else {
		s.phase = ackWaitBias
	}
	return s
}

// SendStep implements sim.Protocol.
func (a AckCommit) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(ackState)
	if !ok {
		return state, nil
	}
	switch {
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		if len(s.out) == 0 && s.afterSend != sim.NoDecision {
			s.decided = s.afterSend
			s.afterSend = sim.NoDecision
			if s.phase != ackTerm {
				s.phase = ackDone
			}
		}
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}
	case s.phase == ackTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s, []sim.Envelope{env}
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (a AckCommit) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(ackState)
	if !ok {
		return state
	}
	from := m.ID.From

	if m.Notice || isTermPayload(m.Payload) {
		if s.phase != ackTerm {
			s = s.enterAckTerm()
		}
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s
	}
	if s.phase == ackTerm {
		// Late main-protocol messages are ignored; see Tree.Receive.
		return s
	}

	switch pl := m.Payload.(type) {
	case valMsg:
		if s.phase == ackCollect && !s.heard.has(from) {
			s.heard = s.heard.add(from)
			if pl.V == sim.Zero {
				s.conj = sim.Zero
				s.zeros = s.zeros.add(from)
			}
			if s.heard.contains(allProcs(s.n).del(0)) {
				s.biasKnown, s.bias = true, s.conj == sim.One
				for _, q := range allProcs(s.n).del(0).members() {
					if !s.bias && s.zeros.has(q) {
						continue
					}
					s.out = appendOut(s.out, outItem{to: q, payload: biasMsg{Committable: s.bias}})
				}
				if s.bias {
					s.phase = ackWaitAcks
				} else if len(s.out) == 0 {
					s.decided = sim.Abort
					s.phase = ackDone
				} else {
					s.afterSend = sim.Abort
				}
			}
		}
	case biasMsg:
		if s.phase == ackWaitBias {
			s.biasKnown, s.bias = true, pl.Committable
			if pl.Committable {
				s.out = appendOut(s.out, outItem{to: 0, payload: ackMsg{}})
				s.phase = ackWaitCommit
			} else {
				s.decided = sim.Abort
				s.phase = ackDone
			}
		}
	case ackMsg:
		if s.phase == ackWaitAcks && !s.acks.has(from) {
			s.acks = s.acks.add(from)
			if s.acks.contains(allProcs(s.n).del(0)) {
				// Every participant is committable: the
				// coordinator decides commit and broadcasts it.
				s.decided = sim.Commit
				s.phase = ackDone
				for _, q := range allProcs(s.n).del(0).members() {
					s.out = appendOut(s.out, outItem{to: q, payload: decisionMsg{D: sim.Commit}})
				}
			}
		}
	case decisionMsg:
		if s.phase == ackWaitCommit && pl.D == sim.Commit {
			s.decided = sim.Commit
			s.phase = ackDone
		}
	}
	return s
}

// enterAckTerm switches into the termination protocol with the current bias.
func (s ackState) enterAckTerm() ackState {
	s.phase = ackTerm
	s.out = nil
	s.afterSend = sim.NoDecision
	committable := s.decided == sim.Commit || (s.biasKnown && s.bias)
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, committable, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
	}
	return s
}
