package protocols

import (
	"testing"

	"repro/internal/sim"
)

// failureFreeProtocols lists every protocol whose failure-free decision is
// the unanimity function of the inputs.
func unanimityProtocols(t *testing.T) []sim.Protocol {
	t.Helper()
	return []sim.Protocol{
		Tree{Procs: 3},
		Tree{Procs: 7},
		Tree{Procs: 3, ST: true},
		AckCommit{Procs: 3},
		AckCommit{Procs: 5},
		Chain{Procs: 4},
		Star{Procs: 4},
		Perverse{},
		FullExchange{Procs: 4},
		HaltingCommit{Procs: 4},
		TwoPhaseCommit{Procs: 4},
		ThresholdCommit{Procs: 4, K: 4},
	}
}

func TestThresholdFailureFree(t *testing.T) {
	proto := ThresholdCommit{Procs: 4, K: 2}
	for _, inputs := range sim.AllInputs(4) {
		run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: 3})
		if err != nil {
			t.Fatalf("inputs %v: %v", inputs, err)
		}
		ones := 0
		for _, b := range inputs {
			if b == sim.One {
				ones++
			}
		}
		want := sim.Abort
		if ones >= 2 {
			want = sim.Commit
		}
		for p := 0; p < 4; p++ {
			got, ok := run.DecisionOf(sim.ProcID(p))
			if !ok || got != want {
				t.Fatalf("inputs %v: %s decided %v (ok=%v), want %s", inputs, sim.ProcID(p), got, ok, want)
			}
		}
	}
}

func TestTerminationFailureFree(t *testing.T) {
	// Failure-free, the Appendix protocol's N rounds of gossip spread the
	// committable bias to everyone: the decision is commit iff any
	// processor started committable.
	proto := Termination{Procs: 4}
	for _, inputs := range sim.AllInputs(proto.N()) {
		run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: 2})
		if err != nil {
			t.Fatalf("inputs %v: %v", inputs, err)
		}
		want := sim.Abort
		for _, b := range inputs {
			if b == sim.One {
				want = sim.Commit
			}
		}
		for p := 0; p < proto.N(); p++ {
			got, ok := run.DecisionOf(sim.ProcID(p))
			if !ok {
				t.Fatalf("inputs %v: %s never decided", inputs, sim.ProcID(p))
			}
			if got != want {
				t.Fatalf("inputs %v: %s decided %s, want %s", inputs, sim.ProcID(p), got, want)
			}
		}
	}
}

func TestFailureFreeDecisions(t *testing.T) {
	for _, proto := range unanimityProtocols(t) {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			for _, inputs := range sim.AllInputs(proto.N()) {
				for seed := int64(0); seed < 5; seed++ {
					run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: seed})
					if err != nil {
						t.Fatalf("inputs %v seed %d: %v", inputs, seed, err)
					}
					want := sim.Unanimity(inputs)
					for p := 0; p < proto.N(); p++ {
						got, ok := run.DecisionOf(sim.ProcID(p))
						if !ok {
							t.Fatalf("inputs %v seed %d: %s never decided\nfinal: %s",
								inputs, seed, sim.ProcID(p), run.Final().States[p].Key())
						}
						if got != want {
							t.Fatalf("inputs %v seed %d: %s decided %s, want %s",
								inputs, seed, sim.ProcID(p), got, want)
						}
					}
				}
			}
		})
	}
}

func TestBroadcastFailureFree(t *testing.T) {
	proto := Broadcast{Procs: 4}
	for _, inputs := range sim.AllInputs(proto.N()) {
		run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: 1})
		if err != nil {
			t.Fatalf("inputs %v: %v", inputs, err)
		}
		want := sim.DecisionFor(inputs[0])
		for p := 0; p < proto.N(); p++ {
			got, ok := run.DecisionOf(sim.ProcID(p))
			if !ok {
				t.Fatalf("inputs %v: %s never decided", inputs, sim.ProcID(p))
			}
			if got != want {
				t.Fatalf("inputs %v: %s decided %s, want %s", inputs, sim.ProcID(p), got, want)
			}
		}
	}
}

func TestRandomFailureRunsAgree(t *testing.T) {
	protos := []sim.Protocol{
		Tree{Procs: 7},
		AckCommit{Procs: 5},
		HaltingCommit{Procs: 5},
		Perverse{},
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			n := proto.N()
			for seed := int64(0); seed < 30; seed++ {
				inputs := make([]sim.Bit, n)
				for i := range inputs {
					if (seed>>uint(i))&1 == 1 {
						inputs[i] = sim.One
					}
				}
				failures := []sim.FailureAt{
					{Proc: sim.ProcID(seed) % sim.ProcID(n), AfterStep: int(seed * 3 % 17)},
				}
				run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: seed, Failures: failures})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				// All processors that ever decided must agree
				// (total consistency).
				agreed := sim.NoDecision
				for p := 0; p < n; p++ {
					d, ok := run.DecisionOf(sim.ProcID(p))
					if !ok {
						if run.Nonfaulty(sim.ProcID(p)) {
							t.Fatalf("seed %d: nonfaulty %s undecided (state %s)",
								seed, sim.ProcID(p), run.Final().States[p].Key())
						}
						continue
					}
					if agreed == sim.NoDecision {
						agreed = d
					} else if d != agreed {
						t.Fatalf("seed %d: decisions disagree (%s vs %s)", seed, agreed, d)
					}
				}
			}
		})
	}
}
