package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// HaltingCommit solves HT-TC, the top of the paper's lattice: it combines
// the safe two-phase structure of AckCommit (no processor decides commit
// until every processor has acknowledged the committable bias, so every
// state is safe) with the halting machinery of the Figure 2 star protocol
// (every processor broadcasts its decision to all others before halting, so
// the modified termination protocol can remove halted processors from UP by
// classifying their decision messages).
//
// Total consistency survives halting precisely because of safety: whenever
// any processor has decided, every processor already shares its bias
// (Corollary 6), so termination-protocol survivors reach the same decision
// without needing a halted processor's cooperation.
//
// Phases: participants vote; a participant voting 0 decides abort,
// broadcasts its decision, and halts. The coordinator aborts (broadcasting
// the decision) if any vote is 0 or a failure is detected while collecting;
// otherwise it sends the committable bias, collects acknowledgements,
// decides commit, broadcasts the decision, and halts. Participants
// acknowledge the bias, decide on the decision message, broadcast their own
// decision, and halt. Failure detection after the bias diverts processors
// into the modified termination protocol.
type HaltingCommit struct {
	// Procs is the number of processors (≥ 2); p0 coordinates.
	Procs int
}

var _ sim.Protocol = HaltingCommit{}

// Name implements sim.Protocol.
func (h HaltingCommit) Name() string { return fmt.Sprintf("haltingcommit(N=%d)", h.Procs) }

// N implements sim.Protocol.
func (h HaltingCommit) N() int { return h.Procs }

type hcPhase int

const (
	hcCollect hcPhase = iota + 1
	hcWaitAcks
	hcWaitBias
	hcWaitCommit
	hcDone // decided; halts once the decision broadcast drains
	hcTerm
)

func (p hcPhase) String() string {
	switch p {
	case hcCollect:
		return "collect"
	case hcWaitAcks:
		return "wait-acks"
	case hcWaitBias:
		return "wait-bias"
	case hcWaitCommit:
		return "wait-commit"
	case hcDone:
		return "done"
	case hcTerm:
		return "term"
	default:
		return "invalid"
	}
}

// hcState is the local state of one HaltingCommit processor.
type hcState struct {
	self  sim.ProcID
	n     int
	input sim.Bit
	phase hcPhase

	heard   procSet
	conj    sim.Bit
	zeros   procSet
	acks    procSet
	anyFail bool

	biasKnown bool
	bias      bool

	out       []outItem
	afterSend sim.Decision
	decided   sim.Decision
	halted    bool

	removed procSet
	term    termCore
}

var _ sim.State = hcState{}

// Kind implements sim.State.
func (s hcState) Kind() sim.StateKind {
	switch {
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == hcTerm && s.term.sending():
		return sim.Sending
	case s.halted:
		return sim.Halted
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s hcState) Decided() (sim.Decision, bool) {
	if s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s hcState) Amnesic() bool { return false }

// Key implements sim.State.
func (s hcState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hc{%s n%d in%d %s heard%s conj%d z%s acks%s",
		s.self, s.n, s.input, s.phase, s.heard.key(), s.conj, s.zeros.key(), s.acks.key())
	if s.anyFail {
		sb.WriteString(" fail")
	}
	if s.biasKnown {
		fmt.Fprintf(&sb, " bias%v", s.bias)
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.afterSend != sim.NoDecision {
		fmt.Fprintf(&sb, " after:%s", s.afterSend)
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	if s.halted {
		sb.WriteString(" halted")
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == hcTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// decideBroadcastHalt queues the decision broadcast to every other
// processor; the processor decides as the broadcast completes and halts.
func (s hcState) decideBroadcastHalt(d sim.Decision) hcState {
	for _, q := range allProcs(s.n).del(s.self).members() {
		s.out = appendOut(s.out, outItem{to: q, payload: decisionMsg{D: d}})
	}
	s.afterSend = d
	s.phase = hcDone
	if len(s.out) == 0 {
		s.decided = d
		s.afterSend = sim.NoDecision
		s.halted = true
	}
	return s
}

// Init implements sim.Protocol.
func (h HaltingCommit) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := hcState{self: p, n: n, input: input, conj: input}
	if p == 0 {
		s.phase = hcCollect
		if n == 1 {
			return s.decideBroadcastHalt(sim.DecisionFor(input))
		}
		return s
	}
	s.out = []outItem{{to: 0, payload: valMsg{V: input}}}
	if input == sim.Zero {
		// A 0-voter knows the outcome: abort, announce to everyone
		// (including the coordinator, which may have been pulled into
		// the termination protocol and needs the decision message to
		// remove this halted processor from its UP set), and halt.
		s.phase = hcDone
		s.afterSend = sim.Abort
		for _, q := range allProcs(n).del(p).del(0).members() {
			s.out = appendOut(s.out, outItem{to: q, payload: decisionMsg{D: sim.Abort}})
		}
		s.out = appendOut(s.out, outItem{to: 0, payload: decisionMsg{D: sim.Abort}})
	} else {
		s.phase = hcWaitBias
	}
	return s
}

// SendStep implements sim.Protocol.
func (h HaltingCommit) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(hcState)
	if !ok {
		return state, nil
	}
	switch {
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		if len(s.out) == 0 && s.afterSend != sim.NoDecision {
			s.decided = s.afterSend
			s.afterSend = sim.NoDecision
			if s.phase != hcTerm {
				s.phase = hcDone
			}
			s.halted = true
		}
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}
	case s.phase == hcTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
			s.halted = true
		}
		return s, []sim.Envelope{env}
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (h HaltingCommit) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(hcState)
	if !ok {
		return state
	}
	from := m.ID.From

	if s.phase == hcTerm {
		return s.hcTermReceive(from, m)
	}

	switch {
	case m.Notice:
		s.removed = s.removed.add(from)
		if s.phase == hcCollect {
			// The coordinator treats a failure during collection as
			// an abort vote (unanimity permits abort once a failure
			// occurs); nobody can be committable yet, so halting on
			// abort is safe.
			s.anyFail = true
			s.heard = s.heard.add(from)
			return s.hcMaybeDecideBias()
		}
		return s.enterHcTerm()
	case isTermPayload(m.Payload):
		s = s.enterHcTerm()
		return s.hcTermReceive(from, m)
	}

	switch pl := m.Payload.(type) {
	case valMsg:
		if s.phase == hcCollect && !s.heard.has(from) {
			s.heard = s.heard.add(from)
			if pl.V == sim.Zero {
				s.conj = sim.Zero
				s.zeros = s.zeros.add(from)
			}
			return s.hcMaybeDecideBias()
		}
	case biasMsg:
		if s.phase == hcWaitBias && pl.Committable {
			s.biasKnown, s.bias = true, true
			s.out = appendOut(s.out, outItem{to: 0, payload: ackMsg{}})
			s.phase = hcWaitCommit
		}
	case ackMsg:
		if s.phase == hcWaitAcks && !s.acks.has(from) {
			s.acks = s.acks.add(from)
			if s.acks.contains(allProcs(s.n).del(0)) {
				return s.decideBroadcastHalt(sim.Commit)
			}
		}
	case decisionMsg:
		switch s.phase {
		case hcWaitBias, hcWaitCommit:
			// Adopt the decision, announce, halt. Under the safe
			// two-phase discipline a commit decision implies this
			// processor already acknowledged the committable bias.
			if pl.D == sim.Commit {
				s.biasKnown, s.bias = true, true
			}
			return s.decideBroadcastHalt(pl.D)
		}
	}
	return s
}

// hcMaybeDecideBias runs the coordinator's bias step once every participant
// is accounted for.
func (s hcState) hcMaybeDecideBias() hcState {
	if !s.heard.contains(allProcs(s.n).del(0)) {
		return s
	}
	if s.anyFail || s.conj == sim.Zero {
		return s.decideBroadcastHalt(sim.Abort)
	}
	s.biasKnown, s.bias = true, true
	for _, q := range allProcs(s.n).del(0).members() {
		s.out = appendOut(s.out, outItem{to: q, payload: biasMsg{Committable: true}})
	}
	s.phase = hcWaitAcks
	return s
}

// hcTermReceive handles a message inside the modified termination protocol.
func (s hcState) hcTermReceive(from sim.ProcID, m sim.Message) sim.State {
	switch {
	case m.Notice:
		s.removed = s.removed.add(from)
		s.term = s.term.onRemoved(from)
	default:
		switch pl := m.Payload.(type) {
		case termMsg:
			s.term = s.term.onTermMsg(from, pl)
		case amnesicMsg:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		case decisionMsg:
			// Figure 2's modification: the sender has halted —
			// remove it — and its decision classifies as bias
			// evidence.
			s.removed = s.removed.add(from)
			if pl.D == sim.Commit {
				s.term = s.term.onEvidence()
			}
			s.term = s.term.onRemoved(from)
		}
	}
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
		s.halted = true
	}
	return s
}

// enterHcTerm switches into the modified termination protocol with the
// current bias.
func (s hcState) enterHcTerm() hcState {
	s.phase = hcTerm
	s.out = nil
	s.afterSend = sim.NoDecision
	committable := s.decided == sim.Commit || (s.biasKnown && s.bias)
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, committable, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
		s.halted = true
	}
	return s
}
