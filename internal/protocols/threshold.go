package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// ThresholdCommit generalizes AckCommit from the unanimity rule to the
// threshold-k rule of Section 2: decide 1 only if at least K processors
// have initial value 1 (and 0 only if fewer do, or a failure occurs). The
// structure is the same safe two-phase discipline — the coordinator tallies
// votes, distributes the bias, collects acknowledgements from everyone, and
// only then decides commit — so whenever a processor has decided, every
// processor shares its bias, and the Appendix termination protocol resolves
// failures consistently.
//
// With K = N the protocol coincides with AckCommit's rule (unanimity); the
// point of the type is that the taxonomy's decision-rule axis is genuinely
// pluggable: ThresholdCommit{Procs: n, K: k} solves WT-TC under
// taxonomy.ThresholdRule{K: k}.
type ThresholdCommit struct {
	// Procs is the number of processors (≥ 2); p0 coordinates.
	Procs int
	// K is the commit threshold, 1 ≤ K ≤ Procs.
	K int
}

var _ sim.Protocol = ThresholdCommit{}

// Name implements sim.Protocol.
func (t ThresholdCommit) Name() string {
	return fmt.Sprintf("threshold(N=%d,K=%d)", t.Procs, t.K)
}

// N implements sim.Protocol.
func (t ThresholdCommit) N() int { return t.Procs }

// thState is the local state of one ThresholdCommit processor. Unlike the
// unanimity protocols, 0-voters cannot abort unilaterally (the tally may
// still reach K), so every participant waits for the bias.
type thState struct {
	self  sim.ProcID
	n     int
	k     int
	input sim.Bit
	phase ackPhase // reuses AckCommit's phase vocabulary

	heard procSet
	ones  int
	acks  procSet

	biasKnown bool
	bias      bool

	out     []outItem
	decided sim.Decision

	removed procSet
	term    termCore
}

var _ sim.State = thState{}

// Kind implements sim.State.
func (s thState) Kind() sim.StateKind {
	switch {
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == ackTerm && s.term.sending():
		return sim.Sending
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s thState) Decided() (sim.Decision, bool) {
	if s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s thState) Amnesic() bool { return false }

// Key implements sim.State.
func (s thState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "th{%s n%d k%d in%d %s heard%s ones%d acks%s",
		s.self, s.n, s.k, s.input, s.phase, s.heard.key(), s.ones, s.acks.key())
	if s.biasKnown {
		fmt.Fprintf(&sb, " bias%v", s.bias)
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == ackTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// Init implements sim.Protocol.
func (t ThresholdCommit) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := thState{self: p, n: n, k: t.K, input: input}
	if input == sim.One {
		s.ones = 1
	}
	if p == 0 {
		s.phase = ackCollect
		if n == 1 {
			if s.ones >= t.K {
				s.decided = sim.Commit
			} else {
				s.decided = sim.Abort
			}
			s.phase = ackDone
		}
		return s
	}
	s.out = []outItem{{to: 0, payload: valMsg{V: input}}}
	s.phase = ackWaitBias
	return s
}

// SendStep implements sim.Protocol.
func (t ThresholdCommit) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(thState)
	if !ok {
		return state, nil
	}
	switch {
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}
	case s.phase == ackTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s, []sim.Envelope{env}
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (t ThresholdCommit) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(thState)
	if !ok {
		return state
	}
	from := m.ID.From

	if m.Notice || isTermPayload(m.Payload) {
		if s.phase != ackTerm {
			s = s.enterThTerm()
		}
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s
	}

	switch pl := m.Payload.(type) {
	case valMsg:
		if s.phase == ackCollect && !s.heard.has(from) {
			s.heard = s.heard.add(from)
			if pl.V == sim.One {
				s.ones++
			}
			if s.heard.contains(allProcs(s.n).del(0)) {
				s.biasKnown, s.bias = true, s.ones >= s.k
				for _, q := range allProcs(s.n).del(0).members() {
					s.out = appendOut(s.out, outItem{to: q, payload: biasMsg{Committable: s.bias}})
				}
				if s.bias {
					s.phase = ackWaitAcks
				} else {
					s.decided = sim.Abort
					s.phase = ackDone
				}
			}
		}
	case biasMsg:
		if s.phase == ackWaitBias {
			s.biasKnown, s.bias = true, pl.Committable
			if pl.Committable {
				s.out = appendOut(s.out, outItem{to: 0, payload: ackMsg{}})
				s.phase = ackWaitCommit
			} else {
				s.decided = sim.Abort
				s.phase = ackDone
			}
		}
	case ackMsg:
		if s.phase == ackWaitAcks && !s.acks.has(from) {
			s.acks = s.acks.add(from)
			if s.acks.contains(allProcs(s.n).del(0)) {
				s.decided = sim.Commit
				s.phase = ackDone
				for _, q := range allProcs(s.n).del(0).members() {
					s.out = appendOut(s.out, outItem{to: q, payload: decisionMsg{D: sim.Commit}})
				}
			}
		}
	case decisionMsg:
		if s.phase == ackWaitCommit && pl.D == sim.Commit {
			s.decided = sim.Commit
			s.phase = ackDone
		}
	}
	return s
}

// enterThTerm switches into the termination protocol: committable iff the
// processor knows the tally reached the threshold (a committable bias or a
// commit decision — under the safe discipline the two coincide).
func (s thState) enterThTerm() thState {
	s.phase = ackTerm
	s.out = nil
	committable := s.decided == sim.Commit || (s.biasKnown && s.bias)
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, committable, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
	}
	return s
}
