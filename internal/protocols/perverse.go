package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Perverse is the WT-TC protocol of Figure 4: a four-processor protocol
// whose scheme contains exactly four failure-free communication patterns per
// input vector, distinguished by three contentless "dashed" messages that
// are sent or not sent according to the order in which certain other
// messages happen to be delivered:
//
//	m1 (p0 → p3) is sent iff p1's greeting is delivered to p0 before p3's;
//	m2 (p1 → p0) is sent iff p0's greeting is delivered to p1 before p3's;
//	m3 (p0 → p2) is sent iff both m1 and m2 are sent.
//
// The solid substrate is a two-phase star commit with coordinator p2 (bias
// before any decision, so all states are safe), and the greetings/dashed
// messages carry no information whatsoever: eliminating them leaves a
// perfectly good WT-TC (and ST-TC) pattern. The perversity is exactly the
// paper's: the scheme of this protocol cannot be the scheme of any ST-TC
// protocol, because an amnesic p0 cannot remember whether it sent m1 when m2
// arrives (Theorem 13, second half).
//
// The TR's figure does not pin down the exact endpoints of the dashed
// messages, so this reconstruction fixes concrete ones while preserving the
// figure's logical structure: four patterns related by exactly the stated
// send rules, with the dashed messages serving no purpose. To keep the
// pattern count at exactly four, the dashed sends are gated causally after
// every solid send of their recipients (p0 acts after it decides, and m2 is
// gated on a solid "done" message that p0 sends after resolving m1).
//
// With ForgetfulP0 set, p0 discards its m1 memory upon deciding — the
// executable counterpart of p0 becoming amnesic — and must fall back to a
// fixed rule on receiving m2 (it always sends m3). The resulting scheme
// contains patterns outside the four above, realizing the contradiction in
// the proof of Theorem 13.
type Perverse struct {
	// ForgetfulP0 makes p0 forget whether it sent m1, as an amnesic
	// processor would.
	ForgetfulP0 bool
}

var _ sim.Protocol = Perverse{}

// perverseN is the fixed processor count of Figure 4.
const perverseN = 4

// perverseCoord is the coordinator of the solid substrate.
const perverseCoord sim.ProcID = 2

// Name implements sim.Protocol.
func (pv Perverse) Name() string {
	if pv.ForgetfulP0 {
		return "perverse-forgetful"
	}
	return "perverse"
}

// N implements sim.Protocol.
func (pv Perverse) N() int { return perverseN }

// hiMsg is a contentless greeting used only to create a delivery race.
type hiMsg struct{}

func (hiMsg) Key() string { return "hi" }

// doneMsg is p0's solid post-decision message to p1, gating m2 causally
// after p0's m1 resolution.
type doneMsg struct{}

func (doneMsg) Key() string { return "done" }

// xMsg is a contentless dashed message m1, m2, or m3.
type xMsg struct{ ID int }

func (m xMsg) Key() string { return fmt.Sprintf("x%d", m.ID) }

type perversePhase int

const (
	pvWaitBias   perversePhase = iota + 1 // participant awaiting bias
	pvWaitCommit                          // participant acked, awaiting commit
	pvCollect                             // coordinator gathering inputs
	pvWaitAcks                            // coordinator awaiting acks
	pvDone                                // decided (keeps listening: WT)
	pvTerm                                // termination protocol
)

func (p perversePhase) String() string {
	switch p {
	case pvWaitBias:
		return "wait-bias"
	case pvWaitCommit:
		return "wait-commit"
	case pvCollect:
		return "collect"
	case pvWaitAcks:
		return "wait-acks"
	case pvDone:
		return "done"
	case pvTerm:
		return "term"
	default:
		return "invalid"
	}
}

// perverseState is the local state of one Figure 4 processor.
type perverseState struct {
	self      sim.ProcID
	n         int
	input     sim.Bit
	forgetful bool
	phase     perversePhase

	heard procSet
	conj  sim.Bit
	acks  procSet

	biasKnown bool
	bias      bool

	// Race bookkeeping (p0 and p1).
	his        procSet    // greeting senders received
	firstHi    sim.ProcID // sender of the first greeting (valid once his ≠ ∅)
	ackPending bool       // committable bias received, ack awaiting the greetings
	gotDone    bool       // p1 only
	sentM1     bool       // p0 only (forgotten by the forgetful variant)
	m1Known    bool       // p0 only: whether the m1 memory is intact
	sentM2     bool       // p1 only
	gotM2      bool       // p0 only
	sentM3     bool       // p0 only
	dashed     bool       // post-decision dashed/done sends already queued

	out     []outItem
	decided sim.Decision

	removed procSet
	term    termCore
}

var _ sim.State = perverseState{}

// Kind implements sim.State.
func (s perverseState) Kind() sim.StateKind {
	switch {
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == pvTerm && s.term.sending():
		return sim.Sending
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s perverseState) Decided() (sim.Decision, bool) {
	if s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s perverseState) Amnesic() bool { return false }

// Key implements sim.State.
func (s perverseState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pv{%s in%d %s heard%s conj%d acks%s", s.self, s.input, s.phase, s.heard.key(), s.conj, s.acks.key())
	if s.biasKnown {
		fmt.Fprintf(&sb, " bias%v", s.bias)
	}
	fmt.Fprintf(&sb, " his%s", s.his.key())
	if !s.his.empty() {
		fmt.Fprintf(&sb, " first%s", s.firstHi)
	}
	if s.ackPending {
		sb.WriteString(" ackp")
	}
	if s.gotDone {
		sb.WriteString(" gdone")
	}
	if s.m1Known {
		fmt.Fprintf(&sb, " m1:%v", s.sentM1)
	}
	if s.sentM2 {
		sb.WriteString(" m2s")
	}
	if s.gotM2 {
		sb.WriteString(" m2g")
	}
	if s.sentM3 {
		sb.WriteString(" m3s")
	}
	if s.dashed {
		sb.WriteString(" dashed")
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == pvTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// Init implements sim.Protocol.
func (pv Perverse) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := perverseState{self: p, n: n, input: input, conj: input, forgetful: pv.ForgetfulP0}
	switch p {
	case perverseCoord:
		s.phase = pvCollect
	case 0:
		s.phase = pvWaitBias
		s.out = []outItem{
			{to: perverseCoord, payload: valMsg{V: input}},
			{to: 1, payload: hiMsg{}},
		}
	case 1:
		s.phase = pvWaitBias
		s.out = []outItem{
			{to: perverseCoord, payload: valMsg{V: input}},
			{to: 0, payload: hiMsg{}},
		}
	case 3:
		s.phase = pvWaitBias
		s.out = []outItem{
			{to: perverseCoord, payload: valMsg{V: input}},
			{to: 0, payload: hiMsg{}},
			{to: 1, payload: hiMsg{}},
		}
	}
	return s
}

// SendStep implements sim.Protocol.
func (pv Perverse) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(perverseState)
	if !ok {
		return state, nil
	}
	switch {
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}
	case s.phase == pvTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s, []sim.Envelope{env}
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (pv Perverse) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(perverseState)
	if !ok {
		return state
	}
	from := m.ID.From

	if m.Notice || isTermPayload(m.Payload) {
		if s.phase != pvTerm {
			s = s.enterPerverseTerm()
		}
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s
	}
	if s.phase == pvTerm {
		// Late main-protocol messages are ignored; see Tree.Receive.
		return s
	}

	switch pl := m.Payload.(type) {
	case hiMsg:
		if s.his.empty() {
			s.firstHi = from
		}
		s.his = s.his.add(from)
	case doneMsg:
		s.gotDone = true
	case xMsg:
		if pl.ID == 2 && s.self == 0 {
			s.gotM2 = true
		}
		// m1 (at p3) and m3 (at p2) are ignored: the dashed messages
		// serve no purpose.
	case valMsg:
		if s.phase == pvCollect && !s.heard.has(from) {
			s.heard = s.heard.add(from)
			if pl.V == sim.Zero {
				s.conj = sim.Zero
			}
			if s.heard.contains(allProcs(s.n).del(perverseCoord)) {
				s.biasKnown, s.bias = true, s.conj == sim.One
				for _, q := range allProcs(s.n).del(perverseCoord).members() {
					s.out = appendOut(s.out, outItem{to: q, payload: biasMsg{Committable: s.bias}})
				}
				if s.bias {
					s.phase = pvWaitAcks
				} else {
					s.decided = sim.Abort
					s.phase = pvDone
				}
			}
		}
	case biasMsg:
		if s.phase == pvWaitBias {
			s.biasKnown, s.bias = true, pl.Committable
			if pl.Committable {
				// The acknowledgement is gated on the greetings so
				// that its causal past is the same fixed set in
				// every failure-free execution; only the dashed
				// messages may vary (exactly four patterns).
				s.ackPending = true
				s.phase = pvWaitCommit
			} else {
				s.decided = sim.Abort
				s.phase = pvDone
			}
		}
	case ackMsg:
		if s.phase == pvWaitAcks && !s.acks.has(from) {
			s.acks = s.acks.add(from)
			if s.acks.contains(allProcs(s.n).del(perverseCoord)) {
				s.decided = sim.Commit
				s.phase = pvDone
				for _, q := range allProcs(s.n).del(perverseCoord).members() {
					s.out = appendOut(s.out, outItem{to: q, payload: decisionMsg{D: sim.Commit}})
				}
			}
		}
	case decisionMsg:
		if s.phase == pvWaitCommit && pl.D == sim.Commit {
			s.decided = sim.Commit
			s.phase = pvDone
		}
	}
	return s.maybeDashed()
}

// needHis returns the greeting senders this processor races on.
func (s perverseState) needHis() procSet {
	switch s.self {
	case 0:
		return bit(1).add(3)
	case 1:
		return bit(0).add(3)
	default:
		return procSet{}
	}
}

// maybeDashed releases the greeting-gated sends once their preconditions
// hold: the acknowledgement, the dashed messages, and p0's done marker.
func (s perverseState) maybeDashed() sim.State {
	bothHis := s.his.contains(s.needHis())
	if s.ackPending && bothHis {
		s.ackPending = false
		s.out = appendOut(s.out, outItem{to: perverseCoord, payload: ackMsg{}})
	}
	switch s.self {
	case 0:
		if !s.dashed && s.decided != sim.NoDecision && s.phase == pvDone && bothHis {
			s.dashed = true
			s.m1Known = true
			if s.firstHi == 1 {
				// m1: sent iff p1's greeting beat p3's.
				s.sentM1 = true
				s.out = appendOut(s.out, outItem{to: 3, payload: xMsg{ID: 1}})
			}
			if s.forgetful {
				// The amnesic p0 forgets whether it sent m1.
				s.m1Known = false
				s.sentM1 = false
			}
			s.out = appendOut(s.out, outItem{to: 1, payload: doneMsg{}})
		}
		if s.gotM2 && !s.sentM3 && s.dashed {
			send := false
			if s.m1Known {
				// m3: sent iff both m1 and m2 were sent.
				send = s.sentM1
			} else {
				// A forgetful p0 cannot condition on m1; it must
				// behave uniformly. It always sends m3.
				send = true
			}
			if send {
				s.sentM3 = true
				s.out = appendOut(s.out, outItem{to: perverseCoord, payload: xMsg{ID: 3}})
			} else {
				s.sentM3 = true // resolved: never send
			}
		}
	case 1:
		if !s.dashed && s.decided != sim.NoDecision && s.phase == pvDone && bothHis && s.gotDone {
			s.dashed = true
			if s.firstHi == 0 {
				// m2: sent iff p0's greeting beat p3's.
				s.sentM2 = true
				s.out = appendOut(s.out, outItem{to: 0, payload: xMsg{ID: 2}})
			}
		}
	}
	return s
}

// enterPerverseTerm switches into the termination protocol with the current
// bias.
func (s perverseState) enterPerverseTerm() perverseState {
	s.phase = pvTerm
	s.out = nil
	committable := s.decided == sim.Commit || (s.biasKnown && s.bias)
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, committable, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
	}
	return s
}
