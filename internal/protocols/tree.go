package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Tree is the WT-TC tree protocol of Figure 1. Processors form a complete
// binary tree (heap layout: the root is p0, the children of p_i are
// p_{2i+1} and p_{2i+2}); the paper's instance has seven processors.
//
// Phase 1: inputs are sent toward the root, which sets bias to committable
// iff every input is 1 and sends the bias toward the leaves — except that no
// message is sent to a leaf whose input was 0 (such a leaf already knows the
// bias is noncommittable and aborts immediately after sending its input).
// If the bias is noncommittable, processors abort and Phase 2 is omitted.
//
// Phase 2 (bias committable): leaves acknowledge toward the root; after
// receiving all acknowledgements the root decides commit and sends commit
// toward the leaves.
//
// Whenever a failure is detected, processors switch to the Appendix
// termination protocol, carrying their current bias.
//
// With ST set, the protocol is the Corollary 11 variant: processors become
// amnesic as soon as they decide, and amnesic processors announce themselves
// when they detect a failure so that the termination protocol's UP sets can
// drop them.
type Tree struct {
	// Procs is the number of processors; it must be 2^k − 1 for k ≥ 2.
	Procs int
	// ST selects the strongly terminating (amnesic) variant.
	ST bool
}

var _ sim.Protocol = Tree{}

// Name implements sim.Protocol.
func (t Tree) Name() string {
	if t.ST {
		return fmt.Sprintf("tree-st(N=%d)", t.Procs)
	}
	return fmt.Sprintf("tree(N=%d)", t.Procs)
}

// N implements sim.Protocol.
func (t Tree) N() int { return t.Procs }

// ValidTreeSize reports whether n is a complete-binary-tree size 2^k − 1,
// k ≥ 2.
func ValidTreeSize(n int) bool {
	return n >= 3 && (n+1)&n == 0
}

func parent(p sim.ProcID) sim.ProcID { return (p - 1) / 2 }

func children(p sim.ProcID, n int) []sim.ProcID {
	var out []sim.ProcID
	if l := 2*p + 1; int(l) < n {
		out = append(out, l)
	}
	if r := 2*p + 2; int(r) < n {
		out = append(out, r)
	}
	return out
}

func isLeaf(p sim.ProcID, n int) bool { return int(2*p+1) >= n }

// treePhase tracks a processor's logical position in the protocol.
type treePhase int

const (
	phaseLeafSendVal treePhase = iota + 1
	phaseLeafWaitBias
	phaseLeafWaitCommit
	phaseInnerWaitVals
	phaseInnerWaitBias
	phaseInnerWaitAcks
	phaseInnerWaitCommit
	phaseRootWaitVals
	phaseRootWaitAcks
	phaseMainDone // decided in the main protocol
	phaseTerm     // running the termination protocol
	phaseAmnesic  // ST variant: decision made and forgotten
)

func (ph treePhase) String() string {
	names := map[treePhase]string{
		phaseLeafSendVal: "leaf-send-val", phaseLeafWaitBias: "leaf-wait-bias",
		phaseLeafWaitCommit: "leaf-wait-commit", phaseInnerWaitVals: "inner-wait-vals",
		phaseInnerWaitBias: "inner-wait-bias", phaseInnerWaitAcks: "inner-wait-acks",
		phaseInnerWaitCommit: "inner-wait-commit", phaseRootWaitVals: "root-wait-vals",
		phaseRootWaitAcks: "root-wait-acks", phaseMainDone: "main-done",
		phaseTerm: "term", phaseAmnesic: "amnesic",
	}
	return names[ph]
}

// outItem is one pending main-protocol send.
type outItem struct {
	to      sim.ProcID
	payload sim.Payload
}

// treeState is the local state of one tree-protocol processor.
type treeState struct {
	self  sim.ProcID
	n     int
	input sim.Bit
	st    bool // ST variant
	phase treePhase

	agg       sim.Bit // conjunction of own input and received subtree values
	vals      procSet // children whose value has been received
	zeroKids  procSet // leaf children that reported 0 (skipped for bias)
	acks      procSet // children whose ack has been received
	biasKnown bool
	bias      bool // committable?

	out       []outItem    // pending main-protocol sends
	afterSend sim.Decision // decision to take when out drains

	decided sim.Decision
	amnesic bool

	removed procSet // processors known failed or amnesic
	term    termCore

	amnesicSent bool
	amnOut      procSet // pending amnesic-announcement targets
}

var _ sim.State = treeState{}

// Kind implements sim.State.
func (s treeState) Kind() sim.StateKind {
	switch {
	case !s.amnOut.empty():
		return sim.Sending
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == phaseTerm && s.term.sending():
		return sim.Sending
	case s.pendingAmnesia():
		return sim.Sending // a null send moves the decided state to amnesic
	default:
		return sim.Receiving
	}
}

// pendingAmnesia reports whether the ST variant owes a transition from the
// decision state into the amnesic state.
func (s treeState) pendingAmnesia() bool {
	return s.st && s.decided != sim.NoDecision && !s.amnesic
}

// Decided implements sim.State.
func (s treeState) Decided() (sim.Decision, bool) {
	if s.amnesic || s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s treeState) Amnesic() bool { return s.amnesic }

// Key implements sim.State.
func (s treeState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tree{%s n%d in%d %s", s.self, s.n, s.input, s.phase)
	fmt.Fprintf(&sb, " agg%d vals%s zk%s acks%s", s.agg, s.vals.key(), s.zeroKids.key(), s.acks.key())
	if s.biasKnown {
		fmt.Fprintf(&sb, " bias%v", s.bias)
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.afterSend != sim.NoDecision {
		fmt.Fprintf(&sb, " after:%s", s.afterSend)
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	if s.amnesic {
		sb.WriteString(" amnesic")
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == phaseTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	if s.amnesicSent {
		sb.WriteString(" asent")
	}
	if !s.amnOut.empty() {
		fmt.Fprintf(&sb, " aout%s", s.amnOut.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// committableNow reports the processor's current bias for termination-
// protocol entry.
func (s treeState) committableNow() bool {
	if s.decided == sim.Commit {
		return true
	}
	return s.biasKnown && s.bias
}

// Init implements sim.Protocol.
func (t Tree) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := treeState{self: p, n: n, input: input, st: t.ST, agg: input}
	switch {
	case isLeaf(p, n):
		s.out = []outItem{{to: parent(p), payload: valMsg{V: input}}}
		if input == sim.Zero {
			// A leaf with input 0 knows every processor is
			// noncommittable: it aborts right after sending its
			// input, and no further message will be sent to it.
			s.phase = phaseLeafSendVal
			s.afterSend = sim.Abort
		} else {
			s.phase = phaseLeafWaitBias
		}
	case p == 0:
		s.phase = phaseRootWaitVals
	default:
		s.phase = phaseInnerWaitVals
	}
	return s
}

// SendStep implements sim.Protocol.
func (t Tree) SendStep(p sim.ProcID, st sim.State) (sim.State, []sim.Envelope) {
	s, ok := st.(treeState)
	if !ok {
		return st, nil
	}
	switch {
	case !s.amnOut.empty():
		to := s.amnOut.lowest()
		s.amnOut = s.amnOut.del(to)
		if s.amnOut.empty() {
			s.amnesicSent = true
		}
		return s, []sim.Envelope{{To: to, Payload: amnesicMsg{}}}

	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		if len(s.out) == 0 && s.afterSend != sim.NoDecision {
			s.decided = s.afterSend
			s.afterSend = sim.NoDecision
			if s.phase != phaseTerm {
				s.phase = phaseMainDone
			}
		}
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}

	case s.phase == phaseTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s, []sim.Envelope{env}

	case s.pendingAmnesia():
		// The null sending step of the ST variant: move from the
		// decision state into the amnesic state (β = ∅), keeping no
		// record of the processing involved — only the protocol
		// identity, the failure bookkeeping, and the amnesia flag
		// survive. There is really only one amnesic state.
		return treeState{
			self:        s.self,
			n:           s.n,
			st:          s.st,
			phase:       phaseAmnesic,
			amnesic:     true,
			removed:     s.removed,
			amnesicSent: s.amnesicSent,
		}, nil
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (t Tree) Receive(p sim.ProcID, st sim.State, m sim.Message) sim.State {
	s, ok := st.(treeState)
	if !ok {
		return st
	}
	from := m.ID.From

	// Amnesic processors only react by announcing their amnesia once,
	// when they learn that a failure was detected.
	if s.amnesic {
		if (m.Notice || isTermPayload(m.Payload)) && !s.amnesicSent && s.amnOut.empty() {
			if m.Notice {
				s.removed = s.removed.add(from)
			}
			s.amnOut = allProcs(s.n).del(s.self).minus(s.removed)
			if s.amnOut.empty() {
				s.amnesicSent = true
			}
		} else if m.Notice {
			s.removed = s.removed.add(from)
		}
		return s
	}

	// Failure notices, termination-protocol traffic, and amnesia
	// announcements all pull a main-protocol processor into the
	// termination protocol.
	if m.Notice || isTermPayload(m.Payload) {
		if s.phase != phaseTerm {
			s = s.enterTerm()
		}
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s
	}

	if s.phase == phaseTerm {
		// Late main-protocol messages inside the termination protocol
		// are ignored. Adopting them as bias evidence would bypass the
		// round-chain accounting that makes N rounds sufficient for
		// N−1 failures; a safe protocol never needs them, because any
		// decided-commit processor implies every processor was already
		// committable when it entered the termination protocol.
		return s
	}

	return t.receiveMain(s, from, m.Payload)
}

// receiveMain handles a main-protocol message in a main-protocol phase.
func (t Tree) receiveMain(s treeState, from sim.ProcID, payload sim.Payload) sim.State {
	switch s.phase {
	case phaseLeafWaitBias:
		if b, ok := payload.(biasMsg); ok {
			s.biasKnown, s.bias = true, b.Committable
			if b.Committable {
				s.out = []outItem{{to: parent(s.self), payload: ackMsg{}}}
				s.phase = phaseLeafWaitCommit
			} else {
				s.decided = sim.Abort
				s.phase = phaseMainDone
			}
		}
	case phaseLeafWaitCommit:
		if d, ok := payload.(decisionMsg); ok && d.D == sim.Commit {
			s.decided = sim.Commit
			s.phase = phaseMainDone
		}
	case phaseInnerWaitVals, phaseRootWaitVals:
		v, ok := payload.(valMsg)
		if !ok || s.vals.has(from) {
			break
		}
		s.vals = s.vals.add(from)
		if v.V == sim.Zero {
			s.agg = sim.Zero
			if isLeaf(from, s.n) {
				s.zeroKids = s.zeroKids.add(from)
			}
		}
		kids := children(s.self, s.n)
		if s.vals.count() == len(kids) {
			if s.phase == phaseInnerWaitVals {
				s.out = []outItem{{to: parent(s.self), payload: valMsg{V: s.agg}}}
				s.phase = phaseInnerWaitBias
			} else {
				s = s.rootSetBias()
			}
		}
	case phaseInnerWaitBias:
		if b, ok := payload.(biasMsg); ok {
			s.biasKnown, s.bias = true, b.Committable
			s.out = s.biasForwards(b.Committable)
			if b.Committable {
				s.phase = phaseInnerWaitAcks
			} else {
				s.afterSend = sim.Abort
				if len(s.out) == 0 {
					s.decided = sim.Abort
					s.afterSend = sim.NoDecision
					s.phase = phaseMainDone
				}
			}
		}
	case phaseInnerWaitAcks:
		if _, ok := payload.(ackMsg); ok && !s.acks.has(from) {
			s.acks = s.acks.add(from)
			if s.acks.count() == len(children(s.self, s.n)) {
				s.out = []outItem{{to: parent(s.self), payload: ackMsg{}}}
				s.phase = phaseInnerWaitCommit
			}
		}
	case phaseInnerWaitCommit:
		if d, ok := payload.(decisionMsg); ok && d.D == sim.Commit {
			s.decided = sim.Commit
			s.phase = phaseMainDone
			for _, c := range children(s.self, s.n) {
				s.out = appendOut(s.out, outItem{to: c, payload: decisionMsg{D: sim.Commit}})
			}
		}
	case phaseRootWaitAcks:
		if _, ok := payload.(ackMsg); ok && !s.acks.has(from) {
			s.acks = s.acks.add(from)
			if s.acks.count() == len(children(s.self, s.n)) {
				// All acknowledgements received: the root decides
				// commit and sends commit toward the leaves.
				s.decided = sim.Commit
				s.phase = phaseMainDone
				for _, c := range children(s.self, s.n) {
					s.out = appendOut(s.out, outItem{to: c, payload: decisionMsg{D: sim.Commit}})
				}
			}
		}
	case phaseMainDone, phaseLeafSendVal:
		// Decided processors ignore stray main-protocol messages.
	}
	return s
}

// rootSetBias runs the root's bias computation once all values are in.
func (s treeState) rootSetBias() treeState {
	s.biasKnown, s.bias = true, s.agg == sim.One
	s.out = s.biasForwards(s.bias)
	if s.bias {
		s.phase = phaseRootWaitAcks
	} else {
		s.afterSend = sim.Abort
		if len(s.out) == 0 {
			s.decided = sim.Abort
			s.afterSend = sim.NoDecision
			s.phase = phaseMainDone
		}
	}
	return s
}

// biasForwards queues the bias messages for the children, skipping leaf
// children that reported 0 (Figure 1's starred rule).
func (s treeState) biasForwards(committable bool) []outItem {
	var out []outItem
	for _, c := range children(s.self, s.n) {
		if !committable && s.zeroKids.has(c) {
			continue
		}
		out = append(out, outItem{to: c, payload: biasMsg{Committable: committable}})
	}
	return out
}

// enterTerm switches the processor into the Appendix termination protocol,
// carrying its current bias and shrinking UP by every known-failed or
// amnesic processor.
func (s treeState) enterTerm() treeState {
	s.phase = phaseTerm
	s.out = nil
	s.afterSend = sim.NoDecision
	s.vals, s.acks = procSet{}, procSet{}
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, s.committableNow(), up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
	}
	return s
}

// isTermPayload reports whether the payload belongs to the termination
// protocol layer.
func isTermPayload(p sim.Payload) bool {
	switch p.(type) {
	case termMsg, amnesicMsg:
		return true
	default:
		return false
	}
}
