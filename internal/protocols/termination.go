package protocols

import (
	"fmt"

	"repro/internal/sim"
)

// Termination is the Appendix termination protocol run standalone: each
// processor starts with a bias (its input bit: 1 = committable) and a full
// UP set, performs N rounds of bias exchange, and decides commit iff its
// bias is committable at the end.
//
// Started from a safe configuration — one where a committable bias implies
// every input is 1 — it establishes WT-TC within O(N²) steps per processor
// (Theorem 7): each of the N rounds costs at most N−1 sends and N−1
// receives.
//
// Note that started from an arbitrary (unsafe) bias vector it still
// guarantees agreement and termination, but the decision need not satisfy
// any particular decision rule; that is exactly the content of Theorem 7's
// restriction to safe configurations.
type Termination struct {
	// Procs is the number of processors.
	Procs int
}

var _ sim.Protocol = Termination{}

// Name implements sim.Protocol.
func (t Termination) Name() string { return fmt.Sprintf("termination(N=%d)", t.Procs) }

// N implements sim.Protocol.
func (t Termination) N() int { return t.Procs }

// termState wraps a termCore as a full protocol state.
type termState struct {
	core termCore
}

var _ sim.State = termState{}

func (s termState) Kind() sim.StateKind {
	if s.core.sending() {
		return sim.Sending
	}
	if s.core.done {
		// The Appendix protocol ends with an explicit halt. No
		// processor can block on a halted participant: all of its
		// round messages were sent before it halted.
		return sim.Halted
	}
	return sim.Receiving
}

func (s termState) Decided() (sim.Decision, bool) {
	if s.core.done {
		return s.core.decision(), true
	}
	return sim.NoDecision, false
}

func (s termState) Amnesic() bool { return false }

func (s termState) Key() string { return "term{" + s.core.key() + "}" }

// Init implements sim.Protocol.
func (t Termination) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	return termState{core: newTermCore(p, n, input == sim.One, allProcs(n))}
}

// Receive implements sim.Protocol.
func (t Termination) Receive(p sim.ProcID, s sim.State, m sim.Message) sim.State {
	st, ok := s.(termState)
	if !ok {
		return s
	}
	switch {
	case m.Notice:
		st.core = st.core.onRemoved(m.ID.From)
	default:
		if tm, ok := m.Payload.(termMsg); ok {
			st.core = st.core.onTermMsg(m.ID.From, tm)
		}
	}
	return st
}

// SendStep implements sim.Protocol.
func (t Termination) SendStep(p sim.ProcID, s sim.State) (sim.State, []sim.Envelope) {
	st, ok := s.(termState)
	if !ok || !st.core.sending() {
		return s, nil
	}
	core, env := st.core.sendStep()
	st.core = core
	return st, []sim.Envelope{env}
}
