package protocols

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func mustRun(t *testing.T, proto sim.Protocol, inputs string, opts sim.RunnerOptions) *sim.Run {
	t.Helper()
	in, err := sim.InputsFromString(inputs)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.RandomRun(proto, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestStarEveryoneHaltsFailureFree(t *testing.T) {
	run := mustRun(t, Star{Procs: 5}, "11111", sim.RunnerOptions{Seed: 2})
	for p, s := range run.Final().States {
		if s.Kind() != sim.Halted {
			t.Errorf("%s should have halted, state %s", sim.ProcID(p), s.Key())
		}
	}
	// 4 inputs + 4 decisions + 4×3 relays = 20 messages.
	if got := run.MessagesSent(); got != 20 {
		t.Errorf("messages = %d, want 20", got)
	}
}

func TestStarSurvivorsHaltUnderFailures(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		run := mustRun(t, Star{Procs: 4}, "1111", sim.RunnerOptions{
			Seed:     seed,
			Failures: []sim.FailureAt{{Proc: sim.ProcID(seed) % 4, AfterStep: int(seed % 9)}},
		})
		for p, s := range run.Final().States {
			if s.Kind() == sim.Failed {
				continue
			}
			if s.Kind() != sim.Halted {
				t.Fatalf("seed %d: nonfaulty %s did not halt: %s", seed, sim.ProcID(p), s.Key())
			}
		}
	}
}

func TestHaltingCommitEveryoneHalts(t *testing.T) {
	for _, inputs := range []string{"1111", "1011", "0000"} {
		run := mustRun(t, HaltingCommit{Procs: 4}, inputs, sim.RunnerOptions{Seed: 5})
		for p, s := range run.Final().States {
			if s.Kind() != sim.Halted {
				t.Errorf("inputs %s: %s should have halted, state %s", inputs, sim.ProcID(p), s.Key())
			}
		}
	}
}

func TestTreeSTAmnesiaWipesState(t *testing.T) {
	// After quiescence, every processor of the ST tree is amnesic, its
	// decision is hidden, and its state key carries no trace of the
	// inputs or the decision — there is really only one amnesic state
	// (per processor identity).
	commit := mustRun(t, Tree{Procs: 3, ST: true}, "111", sim.RunnerOptions{Seed: 1})
	abort := mustRun(t, Tree{Procs: 3, ST: true}, "101", sim.RunnerOptions{Seed: 1})
	for p := 0; p < 3; p++ {
		cs := commit.Final().States[p]
		as := abort.Final().States[p]
		if !cs.Amnesic() || !as.Amnesic() {
			t.Fatalf("%s should be amnesic in both runs: %s / %s", sim.ProcID(p), cs.Key(), as.Key())
		}
		if _, ok := cs.Decided(); ok {
			t.Fatalf("%s: amnesic state must hide the decision", sim.ProcID(p))
		}
		if cs.Key() != as.Key() {
			t.Fatalf("%s: amnesic states differ between commit and abort runs:\n  %s\n  %s",
				sim.ProcID(p), cs.Key(), as.Key())
		}
	}
	// The decisions were made (and recorded) before amnesia.
	if d, ok := commit.DecisionOf(0); !ok || d != sim.Commit {
		t.Fatal("commit run: decision should be visible in the history")
	}
	if d, ok := abort.DecisionOf(0); !ok || d != sim.Abort {
		t.Fatal("abort run: decision should be visible in the history")
	}
}

func TestZeroLeafReceivesNothing(t *testing.T) {
	// Figure 1's starred rule: no message is sent to a leaf with input 0.
	run := mustRun(t, Tree{Procs: 7}, "1111011", sim.RunnerOptions{Seed: 3})
	zeroLeaf := sim.ProcID(4)
	for _, eff := range run.Effects {
		for _, m := range eff.Sent {
			if m.ID.To == zeroLeaf && !m.Notice {
				t.Fatalf("message %s sent to the 0-leaf", m.ID)
			}
		}
	}
	if d, ok := run.DecisionOf(zeroLeaf); !ok || d != sim.Abort {
		t.Fatal("the 0-leaf aborts on its own")
	}
}

func TestBroadcastRelaysReachEveryone(t *testing.T) {
	// Even if the general reaches only one lieutenant before failing, the
	// relay discipline delivers the value to all nonfaulty processors.
	run := mustRun(t, Broadcast{Procs: 5}, "10000", sim.RunnerOptions{
		Seed:     4,
		Failures: []sim.FailureAt{{Proc: 0, AfterStep: 1}},
	})
	agreed := sim.NoDecision
	for p := 1; p < 5; p++ {
		d, ok := run.DecisionOf(sim.ProcID(p))
		if !ok {
			t.Fatalf("%s undecided: %s", sim.ProcID(p), run.Final().States[p].Key())
		}
		if agreed == sim.NoDecision {
			agreed = d
		} else if agreed != d {
			t.Fatal("lieutenants disagree")
		}
	}
}

func TestTwoPhaseBlockingHazardTrace(t *testing.T) {
	// The canonical 2PC hazard, constructed explicitly: the coordinator
	// commits and fails before any decision message is delivered; the
	// survivors abort via the termination protocol. (This is why 2PC is
	// only WT-IC.)
	proto := TwoPhaseCommit{Procs: 3}
	in, _ := sim.InputsFromString("111")
	cfg := sim.NewConfig(proto, in)
	run := &sim.Run{Proto: proto, Configs: []*sim.Config{cfg}}
	sched := sim.Schedule{
		{Proc: 1, Type: sim.SendStepEvent},
		{Proc: 2, Type: sim.SendStepEvent},
		{Proc: 0, Type: sim.Deliver, Msg: sim.MsgID{From: 1, To: 0, Seq: 1}},
		{Proc: 0, Type: sim.Deliver, Msg: sim.MsgID{From: 2, To: 0, Seq: 1}}, // p0 commits here
		{Proc: 0, Type: sim.Fail},                                            // decision messages still queued in p0's outbox — never sent
	}
	if err := run.Extend(sched); err != nil {
		t.Fatal(err)
	}
	if d, ok := run.DecisionOf(0); !ok || d != sim.Commit {
		t.Fatalf("p0 should have committed before failing: %v %v", d, ok)
	}
	// Let the survivors finish: they see only the failure.
	for !run.Final().Quiescent() {
		events := sim.Enabled(run.Final())
		if len(events) == 0 {
			break
		}
		if err := run.Extend(sim.Schedule{events[0]}); err != nil {
			t.Fatal(err)
		}
	}
	for p := 1; p < 3; p++ {
		if d, ok := run.DecisionOf(sim.ProcID(p)); !ok || d != sim.Abort {
			t.Fatalf("%s should abort after the coordinator vanished: %v %v", sim.ProcID(p), d, ok)
		}
	}
	// Total consistency is violated; interactive consistency is not
	// (the committed coordinator had failed).
}

func TestTreeKeysNamePhases(t *testing.T) {
	// State keys are the checker's vocabulary; spot-check that they name
	// the protocol phases (scenario predicates depend on this).
	s := Tree{Procs: 3}.Init(1, sim.One, 3)
	if !strings.Contains(s.Key(), "leaf-wait-bias") {
		t.Fatalf("leaf key should name its phase: %s", s.Key())
	}
	r := Tree{Procs: 3}.Init(0, sim.One, 3)
	if !strings.Contains(r.Key(), "root-wait-vals") {
		t.Fatalf("root key should name its phase: %s", r.Key())
	}
}
