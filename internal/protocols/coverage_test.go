package protocols

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestAllProtocolsUnderFailureInjection drives every protocol in the
// library through randomized failure-injected executions and checks the
// invariants that hold for all of them: completion, agreement among
// decided processors, canonical state keys at every configuration, and
// trace rendering. This exercises every termination-protocol entry path
// and every state encoder.
func TestAllProtocolsUnderFailureInjection(t *testing.T) {
	protos := []sim.Protocol{
		Tree{Procs: 3},
		Tree{Procs: 7},
		Tree{Procs: 3, ST: true},
		Star{Procs: 4},
		Chain{Procs: 4},
		Chain{Procs: 4, ST: true},
		Perverse{},
		Perverse{ForgetfulP0: true},
		Termination{Procs: 4},
		AckCommit{Procs: 4},
		HaltingCommit{Procs: 4},
		Broadcast{Procs: 4},
		FullExchange{Procs: 4},
		TwoPhaseCommit{Procs: 4},
		ThresholdCommit{Procs: 4, K: 2},
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			n := proto.N()
			for seed := int64(0); seed < 24; seed++ {
				inputs := make([]sim.Bit, n)
				for i := range inputs {
					if (seed>>uint(i))&1 == 1 {
						inputs[i] = sim.One
					}
				}
				failures := []sim.FailureAt{
					{Proc: sim.ProcID(seed) % sim.ProcID(n), AfterStep: int(seed % 11)},
				}
				if seed%4 == 3 {
					failures = append(failures,
						sim.FailureAt{Proc: sim.ProcID(seed/4) % sim.ProcID(n), AfterStep: int(seed % 17)})
				}
				run, err := sim.RandomRun(proto, inputs, sim.RunnerOptions{Seed: seed, Failures: failures})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				// Every nonfaulty processor decides (weak termination
				// holds for every protocol in the library, including
				// the deliberately inconsistent ST chain).
				for p := 0; p < n; p++ {
					pid := sim.ProcID(p)
					if !run.Nonfaulty(pid) {
						continue
					}
					if _, ok := run.DecisionOf(pid); !ok {
						t.Fatalf("seed %d: nonfaulty %s undecided: %s",
							seed, pid, run.Final().States[p].Key())
					}
				}
				// Canonical keys render at every configuration and
				// are stable (same state value ⇒ same key).
				for _, cfg := range run.Configs {
					if k := cfg.Key(); k == "" {
						t.Fatal("empty configuration key")
					}
					for _, s := range cfg.States {
						if s.Key() != s.Key() {
							t.Fatal("key not deterministic")
						}
					}
				}
				if lines := run.Trace(); len(lines) != run.Steps()+1 {
					t.Fatalf("seed %d: trace length mismatch", seed)
				}
			}
		})
	}
}

func TestValidTreeSize(t *testing.T) {
	for n, want := range map[int]bool{1: false, 2: false, 3: true, 4: false, 7: true, 8: false, 15: true} {
		if got := ValidTreeSize(n); got != want {
			t.Errorf("ValidTreeSize(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestProtocolNamesRender(t *testing.T) {
	cases := map[string]sim.Protocol{
		"tree(N=7)":          Tree{Procs: 7},
		"tree-st(N=3)":       Tree{Procs: 3, ST: true},
		"star(N=4)":          Star{Procs: 4},
		"chain(N=4)":         Chain{Procs: 4},
		"chain-st(N=4)":      Chain{Procs: 4, ST: true},
		"perverse":           Perverse{},
		"perverse-forgetful": Perverse{ForgetfulP0: true},
		"termination(N=4)":   Termination{Procs: 4},
		"ackcommit(N=4)":     AckCommit{Procs: 4},
		"haltingcommit(N=4)": HaltingCommit{Procs: 4},
		"broadcast(N=4)":     Broadcast{Procs: 4},
		"fullexchange(N=4)":  FullExchange{Procs: 4},
		"2pc(N=4)":           TwoPhaseCommit{Procs: 4},
		"threshold(N=4,K=2)": ThresholdCommit{Procs: 4, K: 2},
	}
	for want, proto := range cases {
		if got := proto.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestStateKeysNameTheProtocol(t *testing.T) {
	// Keys must be globally unambiguous across protocols: each carries a
	// protocol tag so the checker can never conflate states.
	protos := map[string]sim.Protocol{
		"tree{": Tree{Procs: 3}, "star{": Star{Procs: 3}, "chain{": Chain{Procs: 3},
		"pv{": Perverse{}, "term{": Termination{Procs: 3}, "ack{": AckCommit{Procs: 3},
		"hc{": HaltingCommit{Procs: 3}, "bc{": Broadcast{Procs: 3}, "fx{": FullExchange{Procs: 3},
		"2pc{": TwoPhaseCommit{Procs: 3}, "th{": ThresholdCommit{Procs: 3, K: 2},
	}
	for prefix, proto := range protos {
		s := proto.Init(1, sim.One, proto.N())
		if !strings.HasPrefix(s.Key(), prefix) {
			t.Errorf("%s: key %q should start with %q", proto.Name(), s.Key(), prefix)
		}
	}
}
