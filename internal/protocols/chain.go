package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Chain is the WT-IC protocol of Figure 3 (presented in the proof of
// Theorem 13): each p_i, 1 ≤ i < N, sends its input to p0; p0 tallies the
// inputs, including its own, decides, and sends the decision to p1; p1
// decides accordingly and forwards the decision to p2, and so on, until the
// decision reaches p_{N−1}, which simply decides. No processor halts.
//
// On detecting a failure, processors fall back to the Appendix termination
// protocol carrying their current bias. The protocol satisfies interactive
// consistency but not total consistency: p0 decides before any other
// processor shares its bias (violating Corollary 6), and its single
// failure-free communication pattern cannot support strong termination
// (Theorem 13's first half).
type Chain struct {
	// Procs is the number of processors (≥ 2).
	Procs int
	// ST selects the strongly terminating variant used in the proof of
	// Theorem 13: processors become amnesic as soon as they decide,
	// keeping no record of the processing involved, and announce their
	// amnesia when they detect a failure. The variant is deliberately
	// INCORRECT — Theorem 13 proves the chain pattern cannot support
	// ST-IC — and the model checker exhibits the violation.
	ST bool
}

var _ sim.Protocol = Chain{}

// Name implements sim.Protocol.
func (c Chain) Name() string {
	if c.ST {
		return fmt.Sprintf("chain-st(N=%d)", c.Procs)
	}
	return fmt.Sprintf("chain(N=%d)", c.Procs)
}

// N implements sim.Protocol.
func (c Chain) N() int { return c.Procs }

type chainPhase int

const (
	chainCollect      chainPhase = iota + 1 // p0 tallying inputs
	chainWaitDecision                       // p_i awaiting the decision
	chainDone                               // decided (keeps listening: WT)
	chainTerm                               // termination protocol
	chainAmnesic                            // ST variant: decision forgotten
)

func (p chainPhase) String() string {
	switch p {
	case chainCollect:
		return "collect"
	case chainWaitDecision:
		return "wait-decision"
	case chainDone:
		return "done"
	case chainTerm:
		return "term"
	case chainAmnesic:
		return "amnesic"
	default:
		return "invalid"
	}
}

// chainState is the local state of one Figure 3 processor.
type chainState struct {
	self  sim.ProcID
	n     int
	input sim.Bit
	phase chainPhase

	st bool // ST variant

	heard   procSet
	conj    sim.Bit
	anyFail bool

	out     []outItem
	decided sim.Decision
	amnesic bool

	removed     procSet
	term        termCore
	amnesicSent bool
	amnOut      procSet
}

// pendingAmnesia reports whether the ST variant owes a transition from the
// decision state into the amnesic state.
func (s chainState) pendingAmnesia() bool {
	return s.st && s.decided != sim.NoDecision && !s.amnesic
}

var _ sim.State = chainState{}

// Kind implements sim.State.
func (s chainState) Kind() sim.StateKind {
	switch {
	case !s.amnOut.empty():
		return sim.Sending
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == chainTerm && s.term.sending():
		return sim.Sending
	case s.pendingAmnesia():
		return sim.Sending // null send into the amnesic state
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s chainState) Decided() (sim.Decision, bool) {
	if s.amnesic || s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s chainState) Amnesic() bool { return s.amnesic }

// Key implements sim.State.
func (s chainState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chain{%s n%d in%d %s heard%s conj%d", s.self, s.n, s.input, s.phase, s.heard.key(), s.conj)
	if s.anyFail {
		sb.WriteString(" fail")
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	if s.amnesic {
		sb.WriteString(" amnesic")
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == chainTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	if s.amnesicSent {
		sb.WriteString(" asent")
	}
	if !s.amnOut.empty() {
		fmt.Fprintf(&sb, " aout%s", s.amnOut.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// Init implements sim.Protocol.
func (c Chain) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := chainState{self: p, n: n, input: input, conj: input, st: c.ST}
	if p == 0 {
		s.phase = chainCollect
		if n == 1 {
			s.decided = sim.DecisionFor(input)
			s.phase = chainDone
		}
	} else {
		s.phase = chainWaitDecision
		s.out = []outItem{{to: 0, payload: valMsg{V: input}}}
	}
	return s
}

// SendStep implements sim.Protocol.
func (c Chain) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(chainState)
	if !ok {
		return state, nil
	}
	switch {
	case !s.amnOut.empty():
		to := s.amnOut.lowest()
		s.amnOut = s.amnOut.del(to)
		if s.amnOut.empty() {
			s.amnesicSent = true
		}
		return s, []sim.Envelope{{To: to, Payload: amnesicMsg{}}}
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}
	case s.phase == chainTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s, []sim.Envelope{env}
	case s.pendingAmnesia():
		// The null sending step into the amnesic state: everything is
		// forgotten except the protocol identity, the failure
		// bookkeeping, and the fact that a decision was made.
		return chainState{
			self:        s.self,
			n:           s.n,
			st:          s.st,
			phase:       chainAmnesic,
			amnesic:     true,
			removed:     s.removed,
			amnesicSent: s.amnesicSent,
		}, nil
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (c Chain) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(chainState)
	if !ok {
		return state
	}
	from := m.ID.From

	// Amnesic processors only react by announcing their amnesia once,
	// when they learn that a failure was detected.
	if s.amnesic {
		if (m.Notice || isTermPayload(m.Payload)) && !s.amnesicSent && s.amnOut.empty() {
			if m.Notice {
				s.removed = s.removed.add(from)
			}
			s.amnOut = allProcs(s.n).del(s.self).minus(s.removed)
			if s.amnOut.empty() {
				s.amnesicSent = true
			}
		} else if m.Notice {
			s.removed = s.removed.add(from)
		}
		return s
	}

	// Failure detection (or termination-protocol traffic) moves any
	// non-terminated phase into the termination protocol.
	if m.Notice || isTermPayload(m.Payload) {
		if s.phase != chainTerm {
			s = s.enterChainTerm()
		}
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s
	}

	switch s.phase {
	case chainCollect:
		if v, ok := m.Payload.(valMsg); ok && !s.heard.has(from) {
			s.heard = s.heard.add(from)
			if v.V == sim.Zero {
				s.conj = sim.Zero
			}
			if s.heard.contains(allProcs(s.n).del(0)) {
				// p0 tallies the inputs, including its own,
				// decides, and sends the decision to p1.
				s.decided = sim.DecisionFor(s.conj)
				s.phase = chainDone
				if s.n > 1 {
					s.out = []outItem{{to: 1, payload: decisionMsg{D: s.decided}}}
				}
			}
		}
	case chainWaitDecision:
		if d, ok := m.Payload.(decisionMsg); ok {
			s.decided = d.D
			s.phase = chainDone
			if next := s.self + 1; int(next) < s.n {
				s.out = []outItem{{to: next, payload: decisionMsg{D: d.D}}}
			}
		}
	case chainDone:
		// Decided processors keep listening (weak termination) but
		// ignore stray main-protocol messages.
	case chainTerm:
		// Late main-protocol messages are ignored; see Tree.Receive.
	}
	return s
}

// enterChainTerm switches into the Appendix termination protocol carrying
// the current bias: committable iff the processor has decided commit (only
// p0's tally or a received decision prove that every input is 1).
func (s chainState) enterChainTerm() chainState {
	s.phase = chainTerm
	s.out = nil
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, s.decided == sim.Commit, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
	}
	return s
}
