package protocols

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestProcSetBasics(t *testing.T) {
	var s procSet
	if !s.empty() || s.count() != 0 {
		t.Fatal("zero value should be empty")
	}
	s = s.add(2).add(0).add(5)
	if s.count() != 3 || !s.has(0) || !s.has(2) || !s.has(5) || s.has(1) {
		t.Fatalf("membership wrong: %v", s.members())
	}
	if s.lowest() != 0 {
		t.Fatalf("lowest = %v", s.lowest())
	}
	s = s.del(0)
	if s.lowest() != 2 || s.count() != 2 {
		t.Fatalf("after del: %v", s.members())
	}
	if allProcs(4).contains(s) {
		t.Error("{0..3} must not contain {2,5}: 5 is outside")
	}
	if !allProcs(6).contains(s) {
		t.Error("{0..5} should contain {2,5}")
	}
}

func TestProcSetProperties(t *testing.T) {
	f := func(a, b uint16, shift uint8) bool {
		// Exercise both words of the widened set: sprinkle members across
		// the [0,128) range, not just the low 16 bits.
		off := int(shift) % 112
		var x, y procSet
		for i := 0; i < 16; i++ {
			if a&(1<<uint(i)) != 0 {
				x = x.add(sim.ProcID(i + off))
			}
			if b&(1<<uint(i)) != 0 {
				y = y.add(sim.ProcID(i + off))
			}
		}
		union := x
		for _, p := range y.members() {
			union = union.add(p)
		}
		if !union.contains(x) || !union.contains(y) {
			return false
		}
		if x.count()+y.count() < union.count() {
			return false
		}
		// members round-trips.
		var rebuilt procSet
		for _, p := range x.members() {
			rebuilt = rebuilt.add(p)
		}
		return rebuilt == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermCoreSoloDecidesImmediately(t *testing.T) {
	// With UP = {self}, every round's receive_all is vacuous and the
	// rounds cascade to completion at construction.
	c := newTermCore(0, 3, true, bit(0))
	if !c.done {
		t.Fatal("solo core should be done immediately")
	}
	if c.decision() != sim.Commit {
		t.Fatal("committable solo core should commit")
	}
	c2 := newTermCore(1, 3, false, bit(1))
	if c2.decision() != sim.Abort {
		t.Fatal("noncommittable solo core should abort")
	}
}

func TestTermCoreTwoProcExchange(t *testing.T) {
	// Two processors, one committable: the committable bias spreads and
	// both decide commit after n rounds.
	n := 3
	up := allProcs(2)
	a := newTermCore(0, n, true, up)
	b := newTermCore(1, n, false, up)
	for round := 0; round < 2*n+2 && !(a.done && b.done); round++ {
		for !a.sending() && !b.sending() && !(a.done && b.done) {
			t.Fatalf("deadlock at round %d: a=%s b=%s", round, a.key(), b.key())
		}
		if a.sending() {
			var env sim.Envelope
			a, env = a.sendStep()
			if tm, ok := env.Payload.(termMsg); ok {
				b = b.onTermMsg(0, tm)
			}
		}
		if b.sending() {
			var env sim.Envelope
			b, env = b.sendStep()
			if tm, ok := env.Payload.(termMsg); ok {
				a = a.onTermMsg(1, tm)
			}
		}
	}
	if !a.done || !b.done {
		t.Fatalf("cores did not finish: a=%s b=%s", a.key(), b.key())
	}
	if a.decision() != sim.Commit || b.decision() != sim.Commit {
		t.Fatalf("decisions: a=%s b=%s (committable bias should spread)", a.decision(), b.decision())
	}
}

func TestTermCoreIgnoresStaleRounds(t *testing.T) {
	// A committable message from an earlier round must not flip the bias:
	// the receive_all accepts "messages from this round only".
	up := allProcs(3)
	c := newTermCore(0, 3, false, up)
	// Drain round-1 broadcast.
	for c.sending() {
		c, _ = c.sendStep()
	}
	// Receive both round-1 messages, advance to round 2, drain it, and
	// reach round 3 via round-2 messages.
	c = c.onTermMsg(1, termMsg{Round: 1})
	c = c.onTermMsg(2, termMsg{Round: 1})
	for c.sending() {
		c, _ = c.sendStep()
	}
	c = c.onTermMsg(1, termMsg{Round: 2})
	c = c.onTermMsg(2, termMsg{Round: 2})
	for c.sending() {
		c, _ = c.sendStep()
	}
	if c.round != 3 {
		t.Fatalf("round = %d, want 3", c.round)
	}
	// A stale round-1 committable arrives late: ignored entirely.
	c = c.onTermMsg(1, termMsg{Round: 1, Committable: true})
	if c.bias {
		t.Fatal("stale committable message must not flip the bias")
	}
}

func TestTermCoreEvidenceGuard(t *testing.T) {
	up := allProcs(2)
	c := newTermCore(0, 2, false, up)
	// Round 1: evidence is accepted before the final round's broadcast
	// completes.
	c = c.onEvidence()
	if !c.bias {
		t.Fatal("evidence should be adopted at round 1")
	}

	d := newTermCore(1, 2, false, up)
	for d.sending() {
		d, _ = d.sendStep()
	}
	d = d.onTermMsg(0, termMsg{Round: 1})
	for d.sending() {
		d, _ = d.sendStep()
	}
	// d is now at round 2 (= n) with its broadcast done: late evidence
	// must be ignored, or another survivor could abort while d commits.
	if d.round != 2 || d.sending() {
		t.Fatalf("setup wrong: %s", d.key())
	}
	d = d.onEvidence()
	if d.bias {
		t.Fatal("evidence after the final broadcast must be ignored")
	}
}

func TestTermCoreEarlyMessagesBuffered(t *testing.T) {
	up := allProcs(2)
	c := newTermCore(0, 3, false, up)
	// A round-2 message arrives while still broadcasting round 1.
	for c.sending() {
		c, _ = c.sendStep()
	}
	c = c.onTermMsg(1, termMsg{Round: 2, Committable: true})
	if c.round != 1 {
		t.Fatal("early message must not advance the round")
	}
	if c.bias {
		t.Fatal("early message must not apply before its round")
	}
	c = c.onTermMsg(1, termMsg{Round: 1})
	// Round 1 complete; the buffered round-2 message applies on entry to
	// round 2.
	if c.round != 2 {
		t.Fatalf("round = %d, want 2", c.round)
	}
	if !c.bias {
		t.Fatal("buffered committable should apply at its round")
	}
}

func TestTermCoreRemovalUnblocks(t *testing.T) {
	up := allProcs(3)
	c := newTermCore(0, 3, false, up)
	for c.sending() {
		c, _ = c.sendStep()
	}
	c = c.onTermMsg(1, termMsg{Round: 1})
	if c.round != 1 {
		t.Fatal("still waiting for p2")
	}
	c = c.onRemoved(2)
	if c.round != 2 {
		t.Fatalf("removal of the awaited processor should complete the round; round = %d", c.round)
	}
}
