package protocols

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ParsePayloadKey inverts Payload.Key for every payload type in the
// protocol library. The distributed runtime carries only the canonical key
// across the wire — the receiving node reconstructs the concrete payload
// value here so the protocol's transition functions see exactly the typed
// message the sender emitted. The round-trip contract is total:
// ParsePayloadKey(p.Key()).Key() == p.Key() for every library payload, and
// any string outside the key grammar is an error, never a silent guess.
//
//ccvet:pure
func ParsePayloadKey(key string) (sim.Payload, error) {
	switch key {
	case "ack":
		return ackMsg{}, nil
	case "amnesic":
		return amnesicMsg{}, nil
	case "hi":
		return hiMsg{}, nil
	case "done":
		return doneMsg{}, nil
	case "bias:c":
		return biasMsg{Committable: true}, nil
	case "bias:n":
		return biasMsg{Committable: false}, nil
	case "val0":
		return valMsg{V: sim.Zero}, nil
	case "val1":
		return valMsg{V: sim.One}, nil
	case "dec:abort":
		return decisionMsg{D: sim.Abort}, nil
	case "dec:commit":
		return decisionMsg{D: sim.Commit}, nil
	case "dec:undecided":
		return decisionMsg{D: sim.NoDecision}, nil
	}
	switch {
	case strings.HasPrefix(key, "term"):
		rest := key[len("term"):]
		var committable bool
		switch {
		case strings.HasSuffix(rest, ":c"):
			committable = true
		case strings.HasSuffix(rest, ":n"):
			committable = false
		default:
			return nil, fmt.Errorf("protocols: malformed termination payload key %q", key)
		}
		round, err := strconv.Atoi(rest[:len(rest)-2])
		if err != nil || round < 0 {
			return nil, fmt.Errorf("protocols: malformed termination round in payload key %q", key)
		}
		return termMsg{Round: round, Committable: committable}, nil
	case strings.HasPrefix(key, "x"):
		id, err := strconv.Atoi(key[1:])
		if err != nil {
			return nil, fmt.Errorf("protocols: malformed dashed-message payload key %q", key)
		}
		return xMsg{ID: id}, nil
	}
	return nil, fmt.Errorf("protocols: unknown payload key %q", key)
}
