package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Star is the HT-IC protocol of Figure 2: a centralized (star) protocol in
// which every participant sends its input to the coordinator p0, which
// computes the unanimity decision (aborting if it detects any failure while
// collecting), broadcasts the decision, decides, and halts. Each participant
// receives the decision, relays it to every other participant, decides, and
// halts; a participant that detects a failure first instead calls the
// modified termination protocol, in which receiving a decision message
// removes its (halted) sender from UP and counts as bias evidence.
//
// The protocol establishes halting termination and interactive consistency,
// but not total consistency: the coordinator decides and halts before the
// nonfaulty processors share its bias, violating Corollary 6 whenever the
// decision is commit.
type Star struct {
	// Procs is the number of processors (≥ 3).
	Procs int
}

var _ sim.Protocol = Star{}

// Name implements sim.Protocol.
func (s Star) Name() string { return fmt.Sprintf("star(N=%d)", s.Procs) }

// N implements sim.Protocol.
func (s Star) N() int { return s.Procs }

type starPhase int

const (
	starCollect      starPhase = iota + 1 // p0 gathering inputs
	starWaitDecision                      // p_i awaiting the decision
	starTerm                              // modified termination protocol
	starDone                              // decided; halts once sends drain
)

func (p starPhase) String() string {
	switch p {
	case starCollect:
		return "collect"
	case starWaitDecision:
		return "wait-decision"
	case starTerm:
		return "term"
	case starDone:
		return "done"
	default:
		return "invalid"
	}
}

// starState is the local state of one Figure 2 processor.
type starState struct {
	self  sim.ProcID
	n     int
	input sim.Bit
	phase starPhase

	// Coordinator fields.
	heard   procSet // participants whose input or failure notice arrived
	conj    sim.Bit // conjunction of inputs seen (with own)
	anyFail bool

	out       []outItem
	afterSend sim.Decision

	decided sim.Decision
	halted  bool

	removed procSet
	term    termCore
}

var _ sim.State = starState{}

// Kind implements sim.State.
func (s starState) Kind() sim.StateKind {
	switch {
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == starTerm && s.term.sending():
		return sim.Sending
	case s.halted:
		return sim.Halted
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s starState) Decided() (sim.Decision, bool) {
	if s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s starState) Amnesic() bool { return false }

// Key implements sim.State.
func (s starState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "star{%s n%d in%d %s heard%s conj%d", s.self, s.n, s.input, s.phase, s.heard.key(), s.conj)
	if s.anyFail {
		sb.WriteString(" fail")
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.afterSend != sim.NoDecision {
		fmt.Fprintf(&sb, " after:%s", s.afterSend)
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	if s.halted {
		sb.WriteString(" halted")
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == starTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// Init implements sim.Protocol.
func (st Star) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := starState{self: p, n: n, input: input, conj: input}
	if p == 0 {
		s.phase = starCollect
	} else {
		s.phase = starWaitDecision
		s.out = []outItem{{to: 0, payload: valMsg{V: input}}}
	}
	return s
}

// SendStep implements sim.Protocol.
func (st Star) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(starState)
	if !ok {
		return state, nil
	}
	switch {
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		if len(s.out) == 0 && s.afterSend != sim.NoDecision {
			// "broadcast(decision); decide; halt"
			s.decided = s.afterSend
			s.afterSend = sim.NoDecision
			s.phase = starDone
			s.halted = true
		}
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}

	case s.phase == starTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done {
			s.decided = s.term.decision()
			s.halted = true
		}
		return s, []sim.Envelope{env}
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (st Star) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(starState)
	if !ok {
		return state
	}
	from := m.ID.From

	switch s.phase {
	case starCollect:
		// p0's receive_all over P − {p0}: an input message or a
		// failure notice accounts for its sender.
		if m.Notice {
			s.anyFail = true
			s.removed = s.removed.add(from)
			s.heard = s.heard.add(from)
		} else if v, ok := m.Payload.(valMsg); ok {
			if v.V == sim.Zero {
				s.conj = sim.Zero
			}
			s.heard = s.heard.add(from)
		}
		if s.heard.contains(allProcs(s.n).del(0)) {
			d := sim.Abort
			if !s.anyFail && s.conj == sim.One {
				d = sim.Commit
			}
			for _, q := range allProcs(s.n).del(0).members() {
				s.out = appendOut(s.out, outItem{to: q, payload: decisionMsg{D: d}})
			}
			s.afterSend = d
		}
		return s

	case starWaitDecision:
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s = s.enterStarTerm()
		case isTermPayload(m.Payload):
			s = s.enterStarTerm()
			if tm, ok := m.Payload.(termMsg); ok {
				s.term = s.term.onTermMsg(from, tm)
			}
		default:
			if d, ok := m.Payload.(decisionMsg); ok {
				// Relay the decision to the other participants,
				// then decide and halt.
				for _, q := range allProcs(s.n).del(0).del(s.self).members() {
					s.out = appendOut(s.out, outItem{to: q, payload: decisionMsg{D: d.D}})
				}
				s.afterSend = d.D
				if len(s.out) == 0 {
					s.decided = d.D
					s.afterSend = sim.NoDecision
					s.phase = starDone
					s.halted = true
				}
			}
		}
		if s.phase == starTerm && s.term.done {
			s.decided = s.term.decision()
			s.halted = true
		}
		return s

	case starTerm:
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			case decisionMsg:
				// The Figure 2 modification: the sender of a
				// decision message has halted — remove it from
				// UP — and classify the decision as
				// committable/noncommittable evidence.
				s.removed = s.removed.add(from)
				if pl.D == sim.Commit {
					s.term = s.term.onEvidence()
				}
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
			s.halted = true
		}
		return s

	case starDone:
		return s
	}
	return s
}

// enterStarTerm switches a participant into the modified termination
// protocol. The participant's bias is noncommittable: a participant only
// ever learns that all inputs are 1 by receiving a commit decision, which is
// handled as evidence afterwards.
func (s starState) enterStarTerm() starState {
	s.phase = starTerm
	s.out = nil
	s.afterSend = sim.NoDecision
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, s.decided == sim.Commit, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
		s.halted = true
	}
	return s
}
