package protocols

import (
	"sort"

	"repro/internal/sim"
)

// This file implements sim.Permuter for the four library protocols whose
// topologies carry non-trivial automorphism groups (tree, star, chain,
// full exchange — see internal/symmetry for the groups themselves).
// Permuting a state relabels every processor identity it mentions and, for
// a state owned by p, yields the state as held by perm[p]. Set-valued
// fields (procSet) relabel member-wise; the canonical early-message list
// is re-sorted so that permuting commutes with composition; positional
// queues (out slices) keep their order, which is all canonical-handle
// symmetry dedup needs — it compares exact relabelings, never re-executes
// a permuted state.

// permute relabels a processor set member-wise.
//
//ccvet:pure
func (s procSet) permute(perm sim.ProcPerm) procSet {
	var out procSet
	for _, p := range s.members() {
		out = out.add(perm[p])
	}
	return out
}

// permuteOut relabels the targets of a pending-send queue, preserving
// order (the queue drains positionally).
//
//ccvet:pure
func permuteOut(out []outItem, perm sim.ProcPerm) []outItem {
	if len(out) == 0 {
		return nil
	}
	res := make([]outItem, len(out))
	for i, it := range out {
		res[i] = outItem{to: perm[it.to], payload: it.payload}
	}
	return res
}

// permute relabels a termination-protocol core. The early list is
// re-sorted into its canonical order (appendEarly keeps it sorted by
// round, then sender, then committable), so permuting composes.
//
//ccvet:pure
func (c termCore) permute(perm sim.ProcPerm) termCore {
	c.self = perm[c.self]
	c.up = c.up.permute(perm)
	c.got = c.got.permute(perm)
	c.out = c.out.permute(perm)
	if len(c.early) > 0 {
		early := make([]earlyMsg, len(c.early))
		for i, e := range c.early {
			early[i] = earlyMsg{Round: e.Round, From: perm[e.From], Committable: e.Committable}
		}
		sort.Slice(early, func(i, j int) bool {
			if early[i].Round != early[j].Round {
				return early[i].Round < early[j].Round
			}
			if early[i].From != early[j].From {
				return early[i].From < early[j].From
			}
			return !early[i].Committable && early[j].Committable
		})
		c.early = early
	}
	return c
}

// PermuteProcs implements sim.Permuter.
//
//ccvet:pure
func (s treeState) PermuteProcs(perm sim.ProcPerm) sim.State {
	s.self = perm[s.self]
	s.vals = s.vals.permute(perm)
	s.zeroKids = s.zeroKids.permute(perm)
	s.acks = s.acks.permute(perm)
	s.removed = s.removed.permute(perm)
	s.amnOut = s.amnOut.permute(perm)
	s.out = permuteOut(s.out, perm)
	s.term = s.term.permute(perm)
	return s
}

// PermuteProcs implements sim.Permuter.
//
//ccvet:pure
func (s starState) PermuteProcs(perm sim.ProcPerm) sim.State {
	s.self = perm[s.self]
	s.heard = s.heard.permute(perm)
	s.removed = s.removed.permute(perm)
	s.out = permuteOut(s.out, perm)
	s.term = s.term.permute(perm)
	return s
}

// PermuteProcs implements sim.Permuter.
//
//ccvet:pure
func (s chainState) PermuteProcs(perm sim.ProcPerm) sim.State {
	s.self = perm[s.self]
	s.heard = s.heard.permute(perm)
	s.removed = s.removed.permute(perm)
	s.amnOut = s.amnOut.permute(perm)
	s.out = permuteOut(s.out, perm)
	s.term = s.term.permute(perm)
	return s
}

// PermuteProcs implements sim.Permuter.
//
//ccvet:pure
func (s fxState) PermuteProcs(perm sim.ProcPerm) sim.State {
	s.self = perm[s.self]
	s.heard = s.heard.permute(perm)
	s.removed = s.removed.permute(perm)
	s.out = permuteOut(s.out, perm)
	s.term = s.term.permute(perm)
	return s
}
