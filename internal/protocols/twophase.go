package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// TwoPhaseCommit is classic two-phase commit ([Gr], the paper's
// transaction-commitment citation): participants vote, the coordinator
// decides the unanimity outcome and broadcasts the decision, and
// participants decide on receipt. Failure detection falls back to the
// Appendix termination protocol.
//
// Classic 2PC is the canonical *blocking* protocol: a participant that has
// voted yes and is awaiting the decision has both commit and abort in its
// concurrency set — an unsafe state in the sense of Theorem 2. The protocol
// therefore satisfies only interactive consistency (WT-IC): if the
// coordinator decides commit and fails before the decision reaches anyone,
// the survivors — all noncommittable — abort, violating total consistency.
// The model checker exhibits exactly this run; AckCommit's extra
// acknowledgement phase is what removes it.
type TwoPhaseCommit struct {
	// Procs is the number of processors (≥ 2); p0 coordinates.
	Procs int
}

var _ sim.Protocol = TwoPhaseCommit{}

// Name implements sim.Protocol.
func (t TwoPhaseCommit) Name() string { return fmt.Sprintf("2pc(N=%d)", t.Procs) }

// N implements sim.Protocol.
func (t TwoPhaseCommit) N() int { return t.Procs }

type tpcPhase int

const (
	tpcCollect tpcPhase = iota + 1
	tpcWaitDecision
	tpcDone
	tpcTerm
)

func (p tpcPhase) String() string {
	switch p {
	case tpcCollect:
		return "collect"
	case tpcWaitDecision:
		return "wait-decision"
	case tpcDone:
		return "done"
	case tpcTerm:
		return "term"
	default:
		return "invalid"
	}
}

// tpcState is the local state of one 2PC processor.
type tpcState struct {
	self  sim.ProcID
	n     int
	input sim.Bit
	phase tpcPhase

	heard   procSet
	conj    sim.Bit
	anyFail bool

	out     []outItem
	decided sim.Decision

	removed procSet
	term    termCore
}

var _ sim.State = tpcState{}

// Kind implements sim.State.
func (s tpcState) Kind() sim.StateKind {
	switch {
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == tpcTerm && s.term.sending():
		return sim.Sending
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s tpcState) Decided() (sim.Decision, bool) {
	if s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s tpcState) Amnesic() bool { return false }

// Key implements sim.State.
func (s tpcState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "2pc{%s n%d in%d %s heard%s conj%d", s.self, s.n, s.input, s.phase, s.heard.key(), s.conj)
	if s.anyFail {
		sb.WriteString(" fail")
	}
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == tpcTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// Init implements sim.Protocol.
func (t TwoPhaseCommit) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := tpcState{self: p, n: n, input: input, conj: input}
	if p == 0 {
		s.phase = tpcCollect
		if n == 1 {
			s.decided = sim.DecisionFor(input)
			s.phase = tpcDone
		}
	} else {
		s.phase = tpcWaitDecision
		s.out = []outItem{{to: 0, payload: valMsg{V: input}}}
	}
	return s
}

// SendStep implements sim.Protocol.
func (t TwoPhaseCommit) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(tpcState)
	if !ok {
		return state, nil
	}
	switch {
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}
	case s.phase == tpcTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s, []sim.Envelope{env}
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (t TwoPhaseCommit) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(tpcState)
	if !ok {
		return state
	}
	from := m.ID.From

	if m.Notice || isTermPayload(m.Payload) {
		if s.phase != tpcTerm {
			s = s.enterTpcTerm()
		}
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s
	}

	switch s.phase {
	case tpcCollect:
		if v, ok := m.Payload.(valMsg); ok && !s.heard.has(from) {
			s.heard = s.heard.add(from)
			if v.V == sim.Zero {
				s.conj = sim.Zero
			}
			if s.heard.contains(allProcs(s.n).del(0)) {
				s.decided = sim.DecisionFor(s.conj)
				s.phase = tpcDone
				for _, q := range allProcs(s.n).del(0).members() {
					s.out = appendOut(s.out, outItem{to: q, payload: decisionMsg{D: s.decided}})
				}
			}
		}
	case tpcWaitDecision:
		if d, ok := m.Payload.(decisionMsg); ok {
			s.decided = d.D
			s.phase = tpcDone
		}
	case tpcDone:
		// Decided processors keep listening (weak termination).
	case tpcTerm:
		// Late main-protocol messages are ignored; see Tree.Receive.
	}
	return s
}

// enterTpcTerm switches into the termination protocol with the current bias.
func (s tpcState) enterTpcTerm() tpcState {
	s.phase = tpcTerm
	s.out = nil
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, s.decided == sim.Commit, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
	}
	return s
}
