package protocols

import (
	"testing"

	"repro/internal/sim"
)

// TestParsePayloadKeyRoundTrips proves ParsePayloadKey a left inverse of
// Key over every payload the library can emit.
func TestParsePayloadKeyRoundTrips(t *testing.T) {
	payloads := []sim.Payload{
		valMsg{V: sim.Zero}, valMsg{V: sim.One},
		biasMsg{Committable: true}, biasMsg{Committable: false},
		ackMsg{},
		decisionMsg{D: sim.Abort}, decisionMsg{D: sim.Commit}, decisionMsg{D: sim.NoDecision},
		termMsg{Round: 1, Committable: true}, termMsg{Round: 127, Committable: false},
		amnesicMsg{},
		hiMsg{}, doneMsg{}, xMsg{ID: 1}, xMsg{ID: 3},
	}
	for _, p := range payloads {
		got, err := ParsePayloadKey(p.Key())
		if err != nil {
			t.Fatalf("ParsePayloadKey(%q): %v", p.Key(), err)
		}
		if got != p {
			t.Errorf("ParsePayloadKey(%q) = %#v, want %#v", p.Key(), got, p)
		}
		if got.Key() != p.Key() {
			t.Errorf("round-trip key mismatch: %q → %q", p.Key(), got.Key())
		}
	}
}

// TestParsePayloadKeyRejectsGarbage: strings outside the key grammar are
// errors, never a silently wrong payload.
func TestParsePayloadKeyRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "valx", "val2", "bias:", "bias:x", "dec:", "dec:maybe",
		"term:c", "term1:", "term-1:c", "termx:c", "x", "xq", "failed", "garbage",
	} {
		if p, err := ParsePayloadKey(bad); err == nil {
			t.Errorf("ParsePayloadKey(%q) = %#v, want error", bad, p)
		}
	}
}
