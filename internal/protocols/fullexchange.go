package protocols

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// FullExchange is the naive decentralized unanimity protocol: every
// processor broadcasts its input to every other processor and decides the
// conjunction once all inputs are in, falling back to the termination
// protocol on failure detection.
//
// It is a deliberate negative witness for Theorem 2: a processor that has
// decided commit can be concurrent with a processor that still lacks some
// inputs, whose state therefore does not imply that every input is 1 — an
// unsafe state. The corresponding total-consistency violation is realized
// when the decided processor fails and the lagging processor, left alone,
// must abort. The protocol does satisfy interactive consistency, making it a
// useful WT-IC baseline with O(N²) messages.
type FullExchange struct {
	// Procs is the number of processors (≥ 2).
	Procs int
}

var _ sim.Protocol = FullExchange{}

// Name implements sim.Protocol.
func (f FullExchange) Name() string { return fmt.Sprintf("fullexchange(N=%d)", f.Procs) }

// N implements sim.Protocol.
func (f FullExchange) N() int { return f.Procs }

type fxPhase int

const (
	fxGather fxPhase = iota + 1
	fxDone
	fxTerm
)

func (p fxPhase) String() string {
	switch p {
	case fxGather:
		return "gather"
	case fxDone:
		return "done"
	case fxTerm:
		return "term"
	default:
		return "invalid"
	}
}

// fxState is the local state of one FullExchange processor.
type fxState struct {
	self  sim.ProcID
	n     int
	input sim.Bit
	phase fxPhase

	heard procSet
	conj  sim.Bit

	out     []outItem
	decided sim.Decision

	removed procSet
	term    termCore
}

var _ sim.State = fxState{}

// Kind implements sim.State.
func (s fxState) Kind() sim.StateKind {
	switch {
	case len(s.out) > 0:
		return sim.Sending
	case s.phase == fxTerm && s.term.sending():
		return sim.Sending
	default:
		return sim.Receiving
	}
}

// Decided implements sim.State.
func (s fxState) Decided() (sim.Decision, bool) {
	if s.decided == sim.NoDecision {
		return sim.NoDecision, false
	}
	return s.decided, true
}

// Amnesic implements sim.State.
func (s fxState) Amnesic() bool { return false }

// Key implements sim.State.
func (s fxState) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fx{%s n%d in%d %s heard%s conj%d", s.self, s.n, s.input, s.phase, s.heard.key(), s.conj)
	for _, o := range s.out {
		fmt.Fprintf(&sb, " →%s:%s", o.to, o.payload.Key())
	}
	if s.decided != sim.NoDecision {
		fmt.Fprintf(&sb, " dec:%s", s.decided)
	}
	fmt.Fprintf(&sb, " rm%s", s.removed.key())
	if s.phase == fxTerm {
		fmt.Fprintf(&sb, " [%s]", s.term.key())
	}
	sb.WriteString("}")
	return sb.String()
}

// Init implements sim.Protocol.
func (f FullExchange) Init(p sim.ProcID, input sim.Bit, n int) sim.State {
	s := fxState{self: p, n: n, input: input, conj: input, phase: fxGather}
	for _, q := range allProcs(n).del(p).members() {
		s.out = appendOut(s.out, outItem{to: q, payload: valMsg{V: input}})
	}
	if n == 1 {
		s.decided = sim.DecisionFor(input)
		s.phase = fxDone
	}
	return s
}

// SendStep implements sim.Protocol.
func (f FullExchange) SendStep(p sim.ProcID, state sim.State) (sim.State, []sim.Envelope) {
	s, ok := state.(fxState)
	if !ok {
		return state, nil
	}
	switch {
	case len(s.out) > 0:
		item := s.out[0]
		s.out = append([]outItem(nil), s.out[1:]...)
		return s, []sim.Envelope{{To: item.to, Payload: item.payload}}
	case s.phase == fxTerm && s.term.sending():
		core, env := s.term.sendStep()
		s.term = core
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s, []sim.Envelope{env}
	}
	return s, nil
}

// Receive implements sim.Protocol.
func (f FullExchange) Receive(p sim.ProcID, state sim.State, m sim.Message) sim.State {
	s, ok := state.(fxState)
	if !ok {
		return state
	}
	from := m.ID.From

	if m.Notice || isTermPayload(m.Payload) {
		if s.phase != fxTerm {
			s = s.enterFxTerm()
		}
		switch {
		case m.Notice:
			s.removed = s.removed.add(from)
			s.term = s.term.onRemoved(from)
		default:
			switch pl := m.Payload.(type) {
			case termMsg:
				s.term = s.term.onTermMsg(from, pl)
			case amnesicMsg:
				s.removed = s.removed.add(from)
				s.term = s.term.onRemoved(from)
			}
		}
		if s.term.done && s.decided == sim.NoDecision {
			s.decided = s.term.decision()
		}
		return s
	}

	switch s.phase {
	case fxGather:
		if v, ok := m.Payload.(valMsg); ok && !s.heard.has(from) {
			s.heard = s.heard.add(from)
			if v.V == sim.Zero {
				s.conj = sim.Zero
			}
			if s.heard.contains(allProcs(s.n).del(s.self)) {
				s.decided = sim.DecisionFor(s.conj)
				s.phase = fxDone
			}
		}
	case fxDone:
		// Late inputs are ignored.
	case fxTerm:
		// Late main-protocol messages are ignored; see Tree.Receive.
	}
	return s
}

// enterFxTerm switches into the termination protocol: committable iff the
// processor has decided commit (the only way it can know all inputs are 1 is
// to have gathered them all).
func (s fxState) enterFxTerm() fxState {
	s.phase = fxTerm
	s.out = nil
	committable := s.decided == sim.Commit
	up := allProcs(s.n).minus(s.removed)
	s.term = newTermCore(s.self, s.n, committable, up)
	if s.term.done && s.decided == sim.NoDecision {
		s.decided = s.term.decision()
	}
	return s
}
