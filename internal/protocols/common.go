// Package protocols implements the consensus protocols of Dwork & Skeen
// (1984): the Figure 1 tree WT-TC protocol, the Figure 2 centralized HT-IC
// protocol, the Figure 3 chain WT-IC protocol, the Figure 4 "perverse"
// WT-TC protocol, and the Appendix termination protocol — plus the practical
// substrates the introduction motivates: two-phase and three-phase commit
// and reliable broadcast under fail-stop failures.
//
// Every protocol follows the model of package sim: states are immutable
// values with canonical keys, transitions are pure, and a sending step emits
// at most one message (broadcasts compile to chains of sending states).
package protocols

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// procSet is a set of processors as a two-word bitmask; N ≤ 128. The live
// runtime soaks protocols at N=100+, so the former uint32 mask (N ≤ 31) was
// widened; for sets that fit the old mask the canonical key is unchanged,
// keeping every committed state key and golden trace stable.
type procSet struct{ lo, hi uint64 }

const maxProcSet = 128

func bit(p sim.ProcID) procSet {
	if p < 0 || int(p) >= maxProcSet {
		panic("protocols: processor id " + strconv.Itoa(int(p)) + " outside procSet range [0,128)")
	}
	if p < 64 {
		return procSet{lo: 1 << uint(p)}
	}
	return procSet{hi: 1 << uint(p-64)}
}

// allProcs returns the full set {p_0 … p_{n-1}}.
func allProcs(n int) procSet {
	if n < 0 || n > maxProcSet {
		panic("protocols: N=" + strconv.Itoa(n) + " outside procSet range [0,128]")
	}
	switch {
	case n >= maxProcSet:
		return procSet{lo: ^uint64(0), hi: ^uint64(0)}
	case n >= 64:
		return procSet{lo: ^uint64(0), hi: 1<<uint(n-64) - 1}
	default:
		return procSet{lo: 1<<uint(n) - 1}
	}
}

func (s procSet) has(p sim.ProcID) bool {
	b := bit(p)
	return s.lo&b.lo|s.hi&b.hi != 0
}

func (s procSet) add(p sim.ProcID) procSet {
	b := bit(p)
	return procSet{lo: s.lo | b.lo, hi: s.hi | b.hi}
}

func (s procSet) del(p sim.ProcID) procSet {
	b := bit(p)
	return procSet{lo: s.lo &^ b.lo, hi: s.hi &^ b.hi}
}

func (s procSet) count() int {
	return bits.OnesCount64(s.lo) + bits.OnesCount64(s.hi)
}

func (s procSet) empty() bool { return s.lo|s.hi == 0 }

// contains reports whether s ⊇ t.
func (s procSet) contains(t procSet) bool {
	return s.lo&t.lo == t.lo && s.hi&t.hi == t.hi
}

// minus returns s ∖ t.
func (s procSet) minus(t procSet) procSet {
	return procSet{lo: s.lo &^ t.lo, hi: s.hi &^ t.hi}
}

// lowest returns the smallest member; callers must ensure non-emptiness.
func (s procSet) lowest() sim.ProcID {
	if s.lo != 0 {
		return sim.ProcID(bits.TrailingZeros64(s.lo))
	}
	return sim.ProcID(64 + bits.TrailingZeros64(s.hi))
}

// members lists the set in ascending order.
func (s procSet) members() []sim.ProcID {
	out := make([]sim.ProcID, 0, s.count())
	for rest := s.lo; rest != 0; rest &= rest - 1 {
		out = append(out, sim.ProcID(bits.TrailingZeros64(rest)))
	}
	for rest := s.hi; rest != 0; rest &= rest - 1 {
		out = append(out, sim.ProcID(64+bits.TrailingZeros64(rest)))
	}
	return out
}

// key canonically encodes the set. Sets with no member ≥ 64 render exactly
// as the old 32-bit mask did (bare hex of the low word), so state keys for
// every N ≤ 31 configuration are byte-identical to the pre-widening ones.
func (s procSet) key() string {
	if s.hi == 0 {
		return strconv.FormatUint(s.lo, 16)
	}
	return strconv.FormatUint(s.hi, 16) + "." + fmt.Sprintf("%016x", s.lo)
}

// ---- Message payloads shared across the protocol library ----

// valMsg carries an input value (or an aggregated conjunction of input
// values) toward the root or coordinator.
type valMsg struct{ V sim.Bit }

func (m valMsg) Key() string { return "val" + strconv.Itoa(int(m.V)) }

// biasMsg carries the root's bias down the tree: committable or
// noncommittable.
type biasMsg struct{ Committable bool }

func (m biasMsg) Key() string {
	if m.Committable {
		return "bias:c"
	}
	return "bias:n"
}

// ackMsg acknowledges a committable bias (Figure 1, Phase 2).
type ackMsg struct{}

func (ackMsg) Key() string { return "ack" }

// decisionMsg carries a decision.
type decisionMsg struct{ D sim.Decision }

func (m decisionMsg) Key() string { return "dec:" + m.D.String() }

// termMsg is one round message of the Appendix termination protocol:
// (round, bias).
type termMsg struct {
	Round       int
	Committable bool
}

func (m termMsg) Key() string {
	c := "n"
	if m.Committable {
		c = "c"
	}
	return "term" + strconv.Itoa(m.Round) + ":" + c
}

// amnesicMsg announces that the sender has become amnesic (the modified
// termination protocol of Corollary 11's ST variants).
type amnesicMsg struct{}

func (amnesicMsg) Key() string { return "amnesic" }

// ---- The Appendix termination protocol as an embeddable core ----

// earlyMsg is a round message received ahead of the local round.
type earlyMsg struct {
	Round       int
	From        sim.ProcID
	Committable bool
}

// termCore is the state of one processor executing the Appendix termination
// protocol:
//
//	for round := 1 to N do
//	    broadcast(UP−{p}, (round, bias));
//	    Msgs := receive_all(UP−{p}) — this round's messages only;
//	    UP := UP − {q | failed(q) received};
//	    if "committable" received then bias := committable;
//	od;
//	decide commit iff bias = committable
//
// termCore values are immutable: every mutator returns a fresh value.
type termCore struct {
	self  sim.ProcID
	n     int
	round int
	bias  bool // committable?
	up    procSet
	got   procSet // round messages received for the current round
	out   procSet // broadcast targets not yet sent this round
	early []earlyMsg
	done  bool
}

// newTermCore enters the termination protocol with the given bias and UP
// set (which must contain self). Rounds with nobody to wait for cascade
// immediately.
func newTermCore(self sim.ProcID, n int, bias bool, up procSet) termCore {
	c := termCore{self: self, n: n, round: 1, bias: bias, up: up, out: up.del(self)}
	return c.advance()
}

func (c termCore) key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "r%d b%v up%s got%s out%s", c.round, c.bias, c.up.key(), c.got.key(), c.out.key())
	if c.done {
		sb.WriteString(" done")
	}
	for _, e := range c.early {
		fmt.Fprintf(&sb, " e(%d,%d,%v)", e.Round, e.From, e.Committable)
	}
	return sb.String()
}

// sending reports whether the core still has broadcast targets this round.
func (c termCore) sending() bool { return !c.done && !c.out.empty() }

// waitSet is the set of processors whose current-round message is awaited.
func (c termCore) waitSet() procSet { return c.up.del(c.self) }

// advance moves through rounds as far as the received messages allow. It
// never advances while a broadcast is in progress (the round's receive_all
// follows its broadcast).
func (c termCore) advance() termCore {
	for !c.done && c.out.empty() && c.got.contains(c.waitSet()) {
		c.round++
		if c.round > c.n {
			c.done = true
			return c
		}
		c.got = procSet{}
		c.out = c.waitSet()
		c = c.consumeEarly()
	}
	return c
}

// consumeEarly applies buffered messages matching the current round.
func (c termCore) consumeEarly() termCore {
	if len(c.early) == 0 {
		return c
	}
	var rest []earlyMsg
	for _, e := range c.early {
		if e.Round == c.round {
			if c.up.has(e.From) {
				c.got = c.got.add(e.From)
				if e.Committable {
					c.bias = true
				}
			}
			continue
		}
		rest = append(rest, e)
	}
	c.early = rest
	return c
}

// sendStep pops the next broadcast target, returning the new core and the
// envelope. After the last target the core may advance through rounds that
// need no further input.
func (c termCore) sendStep() (termCore, sim.Envelope) {
	to := c.out.lowest()
	c.out = c.out.del(to)
	env := sim.Envelope{To: to, Payload: termMsg{Round: c.round, Committable: c.bias}}
	if c.out.empty() {
		c = c.advance()
	}
	return c, env
}

// onTermMsg processes a round message from q. Messages from earlier rounds
// are ignored entirely — the Appendix's receive_all accepts "messages from
// this round only". Adopting a stale committable bias would be unsound: the
// adopter may already have sent its final (round N) message as
// noncommittable, so another survivor can complete its rounds and abort
// while the adopter commits.
func (c termCore) onTermMsg(q sim.ProcID, m termMsg) termCore {
	if c.done || !c.up.has(q) || m.Round < c.round {
		return c
	}
	if m.Round > c.round {
		c.early = appendEarly(c.early, earlyMsg{Round: m.Round, From: q, Committable: m.Committable})
		return c
	}
	c.got = c.got.add(q)
	if m.Committable {
		c.bias = true
	}
	return c.advance()
}

// onRemoved deletes q from UP (failure notice or amnesic announcement) and
// re-evaluates the round.
func (c termCore) onRemoved(q sim.ProcID) termCore {
	if c.done || !c.up.has(q) {
		return c
	}
	c.up = c.up.del(q)
	c.out = c.out.del(q)
	return c.advance()
}

// onEvidence adopts the committable bias from out-of-band evidence (a late
// main-protocol message, or Figure 2's classified decision message).
//
// Evidence is adopted only while the processor can still spread it through a
// later round broadcast — strictly before its round-N broadcast completes.
// Adopted at round k < N, the flip rides the round k+1 messages and reaches
// every survivor, preserving the Appendix's agreement argument; adopted
// after the final send it would flip this processor silently, letting
// another survivor finish its rounds all-noncommittable and abort. Ignoring
// late evidence is always consistent: evidence can arrive that late only
// when its originator has failed (a nonfaulty decided processor blocks every
// participant's round 1 until its decision is classified), so no operational
// processor is contradicted.
func (c termCore) onEvidence() termCore {
	if c.done || (c.round == c.n && c.out.empty()) {
		return c
	}
	c.bias = true
	return c
}

// appendOut appends pending envelopes copy-on-write: the result never shares
// a backing array with out. State values flow through the checker's
// configuration graph by value, so an in-place append could write into the
// spare capacity of a slice still referenced by a sibling configuration.
func appendOut(out []outItem, items ...outItem) []outItem {
	fresh := make([]outItem, 0, len(out)+len(items))
	fresh = append(fresh, out...)
	return append(fresh, items...)
}

// appendEarly inserts an early message keeping the slice canonical (sorted)
// and duplicate-free, copying on write.
func appendEarly(early []earlyMsg, e earlyMsg) []earlyMsg {
	out := make([]earlyMsg, 0, len(early)+1)
	out = append(out, early...)
	for _, x := range out {
		if x == e {
			return out
		}
	}
	out = append(out, e)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return !out[i].Committable && out[j].Committable
	})
	return out
}

// decision returns the core's final decision once done.
func (c termCore) decision() sim.Decision {
	if c.bias {
		return sim.Commit
	}
	return sim.Abort
}
