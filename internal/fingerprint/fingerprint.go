// Package fingerprint implements the 128-bit state fingerprints that back
// the exhaustive explorer's hash-based visited sets.
//
// A Digest is a 128-bit fingerprint with two algebraic properties the
// explorer exploits:
//
//   - Digests compose by lane-wise addition modulo 2^64 (Add/Sub), so the
//     fingerprint of a compound object — a configuration, a buffer
//     multiset, a causal-knowledge set — is the sum of its components'
//     contributions, and a successor's fingerprint is derived from its
//     parent's by subtracting the contributions that changed and adding
//     their replacements. No re-encoding of the whole object is ever
//     needed on the hot path.
//   - Contributions are made position- and role-dependent by Mixed, a
//     salted avalanche scramble, so the same component in two different
//     slots (processor 1's state vs processor 2's, a message in buffer 0
//     vs buffer 1) contributes differently and slot swaps change the sum.
//
// Fingerprints are deterministic: the same data always hashes to the same
// digest, across runs and across processes (no per-process seeding), which
// is what lets the differential suites compare fingerprint-keyed and
// string-keyed explorations byte for byte. Equal canonical encodings imply
// equal digests by construction; the converse holds only with overwhelming
// probability, which is why the explorer offers a collision-verification
// mode that falls back to full canonical keys on fingerprint hits.
//
// Everything here is pure: no package-level mutable state, no mutation of
// arguments, no ambient inputs. The ccvet purity analyzer enforces this
// over the whole package.
package fingerprint

import "strconv"

// Digest is a 128-bit fingerprint. The zero value is the fingerprint of
// "nothing": an empty sum of contributions.
type Digest struct {
	Lo, Hi uint64
}

// IsZero reports whether the digest is the zero (empty-sum) digest.
func (d Digest) IsZero() bool { return d.Lo == 0 && d.Hi == 0 }

// Add returns the lane-wise sum of two digests modulo 2^64. Addition is
// commutative and associative, so a sum of contributions is independent of
// the order they were folded in — the property that makes multiset hashes
// and incremental successor derivation sound.
func (d Digest) Add(o Digest) Digest {
	return Digest{Lo: d.Lo + o.Lo, Hi: d.Hi + o.Hi}
}

// Sub removes a previously added contribution: d.Add(o).Sub(o) == d.
func (d Digest) Sub(o Digest) Digest {
	return Digest{Lo: d.Lo - o.Lo, Hi: d.Hi - o.Hi}
}

// Mixed scrambles the digest under a salt, making the result dependent on
// both the digest and the salt with full avalanche. Contributions mixed
// under distinct salts are (with overwhelming probability) algebraically
// unrelated, so sums over salted contributions distinguish both content
// and position.
func (d Digest) Mixed(salt uint64) Digest {
	s := mix64(salt ^ 0xa24baed4963ee407)
	lo := mix64(d.Lo ^ s)
	hi := mix64(d.Hi + s + lo*0x9e3779b97f4a7c15)
	return Digest{Lo: lo, Hi: hi}
}

// Less orders digests lexicographically by (Hi, Lo) — the same order their
// String renderings sort in. Symmetry canonicalization uses it to pick the
// orbit-minimal fingerprint as a state's canonical dedup handle.
func (d Digest) Less(o Digest) bool {
	if d.Hi != o.Hi {
		return d.Hi < o.Hi
	}
	return d.Lo < o.Lo
}

// String renders the digest as 32 hex digits.
func (d Digest) String() string {
	buf := make([]byte, 0, 32)
	buf = appendHex16(buf, d.Hi)
	buf = appendHex16(buf, d.Lo)
	return string(buf)
}

func appendHex16(buf []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		buf = append(buf, digits[(v>>uint(shift))&0xf])
	}
	return buf
}

// mix64 is the splitmix64 finalizer: a bijective avalanche scramble.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hasher streams data into a 128-bit digest: two independent multiply-xor
// lanes with distinct odd multipliers, cross-coupled and avalanched by
// Sum. It exists so compound keys can be hashed piecewise without first
// concatenating them into a string.
type Hasher struct {
	lo, hi uint64
}

// hasher lane constants: lane 1 is FNV-1a 64; lane 2 uses the golden-ratio
// multiplier so the two lanes are algebraically unrelated (two FNV lanes
// with different offsets but the same prime would differ by a data-
// independent term and carry only 64 bits of state between them).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	lane2Init = 0x9747b28c9747b28c
	lane2Mult = 0x9e3779b97f4a7c15
)

// New returns a Hasher ready to accept writes.
func New() Hasher {
	return Hasher{lo: fnvOffset, hi: lane2Init}
}

// WriteString folds a string into the hash byte by byte.
func (h *Hasher) WriteString(s string) {
	lo, hi := h.lo, h.hi
	for i := 0; i < len(s); i++ {
		b := uint64(s[i])
		lo = (lo ^ b) * fnvPrime
		hi = (hi ^ b) * lane2Mult
	}
	h.lo, h.hi = lo, hi
}

// WriteUint64 folds one 64-bit word into the hash in a single step per
// lane. Word writes and byte writes are deliberately distinct encodings;
// callers must not mix them for data that should compare equal.
func (h *Hasher) WriteUint64(v uint64) {
	h.lo = (h.lo ^ v) * fnvPrime
	h.hi = (h.hi ^ mix64(v)) * lane2Mult
}

// Sum finalizes the hash into a digest. Sum does not consume the hasher:
// further writes may follow and Sum may be called again.
func (h *Hasher) Sum() Digest {
	lo := mix64(h.lo ^ (h.hi >> 32))
	hi := mix64(h.hi + lo)
	return Digest{Lo: lo, Hi: hi}
}

// OfString fingerprints a string.
func OfString(s string) Digest {
	h := New()
	h.WriteString(s)
	return h.Sum()
}

// OfUint64 fingerprints a single 64-bit word. It is the cheap path for
// structural keys that pack into one word (message triples, decisions).
func OfUint64(v uint64) Digest {
	lo := mix64(v ^ 0x8e5cd1f6a2b3c4d5)
	hi := mix64(v + 0x71c947a3b2e058d1 + lo)
	return Digest{Lo: lo, Hi: hi}
}

// Parse decodes a 32-hex-digit digest as produced by String. It is the
// inverse used by tests and tooling; malformed input returns ok=false.
func Parse(s string) (Digest, bool) {
	if len(s) != 32 {
		return Digest{}, false
	}
	hi, err1 := strconv.ParseUint(s[:16], 16, 64)
	lo, err2 := strconv.ParseUint(s[16:], 16, 64)
	if err1 != nil || err2 != nil {
		return Digest{}, false
	}
	return Digest{Lo: lo, Hi: hi}, true
}
