package fingerprint

import (
	"fmt"
	"testing"
)

// TestDeterminism: fingerprints are pure functions of the data, stable
// across calls — the property the differential suites depend on.
func TestDeterminism(t *testing.T) {
	if OfString("hello") != OfString("hello") {
		t.Fatal("OfString is not deterministic")
	}
	if OfUint64(42) != OfUint64(42) {
		t.Fatal("OfUint64 is not deterministic")
	}
	h1, h2 := New(), New()
	h1.WriteString("ab")
	h1.WriteUint64(7)
	h2.WriteString("ab")
	h2.WriteUint64(7)
	if h1.Sum() != h2.Sum() {
		t.Fatal("Hasher is not deterministic")
	}
}

// TestAddSub: Add and Sub are exact inverses, and sums are order
// independent — the algebra behind incremental multiset fingerprints.
func TestAddSub(t *testing.T) {
	a, b, c := OfString("a"), OfString("b"), OfString("c")
	if got := a.Add(b).Sub(b); got != a {
		t.Fatalf("Add/Sub not inverse: %v != %v", got, a)
	}
	if a.Add(b).Add(c) != c.Add(a).Add(b) {
		t.Fatal("Add is order dependent")
	}
	var zero Digest
	if !zero.IsZero() || zero.Add(a) != a {
		t.Fatal("zero digest is not the additive identity")
	}
}

// TestMixedSaltSeparation: the same digest under different salts, and
// different digests under the same salt, must not collide; and mixing must
// not map anything to the zero digest for these inputs (zero means "no
// contribution").
func TestMixedSaltSeparation(t *testing.T) {
	seen := make(map[Digest]string)
	for i := 0; i < 64; i++ {
		d := OfUint64(uint64(i))
		for salt := uint64(0); salt < 64; salt++ {
			m := d.Mixed(salt)
			if m.IsZero() {
				t.Fatalf("Mixed(%d, salt %d) is zero", i, salt)
			}
			key := fmt.Sprintf("%d/%d", i, salt)
			if prev, dup := seen[m]; dup {
				t.Fatalf("collision: %s and %s both map to %v", prev, key, m)
			}
			seen[m] = key
		}
	}
}

// TestLaneIndependence: the two lanes must not be correlated. Two FNV
// lanes differing only in offset would keep a data-independent difference;
// here the lanes use distinct multipliers, so Lo and Hi must diverge
// independently across inputs.
func TestLaneIndependence(t *testing.T) {
	d1, d2 := OfString("x"), OfString("y")
	if d1.Lo-d2.Lo == d1.Hi-d2.Hi {
		t.Fatal("lanes moved in lockstep across inputs x/y")
	}
	if d1.Lo^d2.Lo == d1.Hi^d2.Hi {
		t.Fatal("lanes xor-correlated across inputs x/y")
	}
}

// TestNoCollisionsSmoke hashes a few hundred thousand distinct short
// strings and words; any 128-bit collision here would indicate a broken
// mixer, not bad luck.
func TestNoCollisionsSmoke(t *testing.T) {
	seen := make(map[Digest]struct{}, 1<<19)
	add := func(d Digest, what string) {
		if _, dup := seen[d]; dup {
			t.Fatalf("collision at %s", what)
		}
		seen[d] = struct{}{}
	}
	for i := 0; i < 200_000; i++ {
		add(OfUint64(uint64(i)), fmt.Sprintf("uint %d", i))
	}
	for i := 0; i < 100_000; i++ {
		add(OfString(fmt.Sprintf("s%d", i)), fmt.Sprintf("string %d", i))
	}
	base := OfString("base")
	for salt := uint64(0); salt < 100_000; salt++ {
		add(base.Mixed(salt), fmt.Sprintf("salt %d", salt))
	}
}

// TestStringParse: String and Parse round-trip.
func TestStringParse(t *testing.T) {
	d := OfString("roundtrip")
	s := d.String()
	if len(s) != 32 {
		t.Fatalf("String() length = %d, want 32", len(s))
	}
	got, ok := Parse(s)
	if !ok || got != d {
		t.Fatalf("Parse(%q) = %v, %v; want %v", s, got, ok, d)
	}
	if _, ok := Parse("nope"); ok {
		t.Fatal("Parse accepted malformed input")
	}
	if _, ok := Parse("zz" + s[2:]); ok {
		t.Fatal("Parse accepted non-hex input")
	}
}

// TestSumIsIdempotent: Sum must not consume or perturb the hasher.
func TestSumIsIdempotent(t *testing.T) {
	h := New()
	h.WriteString("abc")
	first := h.Sum()
	if h.Sum() != first {
		t.Fatal("second Sum differs from first")
	}
	h.WriteUint64(1)
	if h.Sum() == first {
		t.Fatal("Sum ignored writes after a previous Sum")
	}
}

// TestAvalanche: flipping one input bit should flip roughly half the
// output bits in each lane. A weak bound (≥ 16 of 64) still catches
// broken finalization.
func TestAvalanche(t *testing.T) {
	for i := 0; i < 64; i++ {
		a := OfUint64(1 << uint(i))
		b := OfUint64(0)
		if popcount(a.Lo^b.Lo) < 16 || popcount(a.Hi^b.Hi) < 16 {
			t.Fatalf("weak avalanche flipping bit %d", i)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
